"""Benchmark batteries and the parallel batch-analysis driver.

Two entry points, both surfaced through the CLI:

* :func:`run_bench` (``repro bench``) times the fast paths (CSR kernels,
  bitset dataflow) against the legacy generic implementations on the
  paper-experiment workload families -- the C1 diamond chains and the F4
  wide-variable programs -- verifying on every row that both sides
  produce identical results.  The payload (schema ``repro.bench/1``) is
  written to ``BENCH_<tag>.json`` so successive PRs leave a perf
  trajectory at the repo root.
* :func:`run_batch` (``repro batch``) analyzes a suite of generated
  programs across a ``multiprocessing`` pool: the suite is chunked, each
  worker builds its own :class:`~repro.pipeline.manager.AnalysisManager`
  per program (spawn-safe -- workers receive program *specs*, never live
  graphs), and per-pass work/wall metrics are aggregated across the
  pool.

Speedups are computed from best-of-``repeat`` wall times, so a noisy
scheduler tick slows a sample, not the ratio.  Regression checking
(:func:`check_regression`) compares *speedups* -- fast-vs-legacy ratios
measured on the same machine in the same run -- against a checked-in
baseline, which keeps the CI gate meaningful across differently-sized
runners.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from typing import Any, Callable

from repro.cfg.builder import build_cfg
from repro.controldep.cycle_equiv import (
    cycle_equivalence,
    cycle_equivalence_reference,
)
from repro.dataflow.anticipatable import (
    anticipatable_expressions_reference,
    partially_anticipatable_expressions_reference,
)
from repro.dataflow.available import (
    available_expressions_reference,
    partially_available_expressions_reference,
)
from repro.dataflow.bitsets import (
    anticipatable_bitsets,
    available_bitsets,
    expression_space,
    liveness_bitsets,
    reaching_bitsets,
)
from repro.dataflow.liveness import live_variables_reference
from repro.dataflow.reaching import reaching_definitions_reference
from repro.graphs.dfs import depth_first_search, depth_first_search_csr
from repro.graphs.dominance import (
    dominator_tree,
    edge_dominators,
    edge_dominators_reference,
    edge_postdominators,
    edge_postdominators_reference,
)
from repro.perf.csr import build_csr
from repro.workloads.generators import (
    array_program,
    irreducible_program,
    random_jump_program,
    random_program,
)
from repro.workloads.lint_defects import lint_defect_program
from repro.workloads.ladders import (
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)

BENCH_SCHEMA = "repro.bench/1"

#: Workload sizes: (label-forming parameter tuples, largest last).
C1_SIZES = (50, 100, 200, 400, 800)
F4_SIZES = ((64, 1), (128, 2), (256, 4), (512, 6))
C1_SIZES_SMOKE = (50, 100)
F4_SIZES_SMOKE = ((48, 1), (96, 2))
REPLAY_SIZES = (60, 120, 240)
REPLAY_SIZES_SMOKE = (40, 80)
#: Flat-root vs balanced-root replay: the win grows with chain length,
#: so the rows start past the ~100-diamond crossover.
BALANCE_SIZES = (128, 256, 512)
BALANCE_SIZES_SMOKE = (128, 256)
#: Arena workload rows: prefix sizes of the equivalence corpus.
ARENA_SLICES = (51, 102, 204)
ARENA_SLICES_SMOKE = (12, 24)
#: Sparse-client workload rows: region counts of the F1 sparse-use
#: ladder, where dense per-edge environments pay for every variable at
#: every node while the split-based clients touch only live names.
SPARSE_CLIENT_SIZES = (16, 32, 64)
SPARSE_CLIENT_SIZES_SMOKE = (8, 16)


# -- batteries ---------------------------------------------------------------
#
# Each battery is the full analysis menu one PR-2 fast path replaced,
# run end to end (the fast side pays for its own CSR build).  The legacy
# and fast batteries return comparable {component: result} dicts.


def _structure_legacy(graph) -> dict[str, Any]:
    dfs = depth_first_search([graph.start], graph.succs)
    dom = dominator_tree(graph.start, graph.succs, graph.preds)
    pdom = dominator_tree(graph.end, graph.preds, graph.succs)
    return {
        "dfs": dfs,
        "dom": dom,
        "pdom": pdom,
        "edom": edge_dominators_reference(graph),
        "epdom": edge_postdominators_reference(graph),
        "cycle-equiv": cycle_equivalence_reference(graph),
    }


def _structure_fast(graph) -> dict[str, Any]:
    from repro.graphs.dominance import cfg_dominators, cfg_postdominators

    csr = build_csr(graph)
    return {
        "dfs": depth_first_search_csr(csr),
        "dom": cfg_dominators(graph, csr=csr),
        "pdom": cfg_postdominators(graph, csr=csr),
        "edom": edge_dominators(graph, csr=csr),
        "epdom": edge_postdominators(graph, csr=csr),
        "cycle-equiv": cycle_equivalence(graph, csr=csr),
    }


def _dataflow_legacy(graph) -> dict[str, Any]:
    return {
        "liveness": live_variables_reference(graph),
        "reaching": reaching_definitions_reference(graph),
        "available": available_expressions_reference(graph),
        "pavailable": partially_available_expressions_reference(graph),
        "anticipatable": anticipatable_expressions_reference(graph),
        "panticipatable": partially_anticipatable_expressions_reference(graph),
    }


def _dataflow_fast(graph) -> dict[str, Any]:
    csr = build_csr(graph)
    space = expression_space(graph, csr)
    return {
        "liveness": liveness_bitsets(graph, csr=csr),
        "reaching": reaching_bitsets(graph, csr=csr),
        "available": available_bitsets(graph, csr=csr, space=space),
        "pavailable": available_bitsets(
            graph, csr=csr, space=space, must=False
        ),
        "anticipatable": anticipatable_bitsets(graph, csr=csr, space=space),
        "panticipatable": anticipatable_bitsets(
            graph, csr=csr, space=space, must=False
        ),
    }


def _tree_eq(a, b) -> bool:
    return a.root == b.root and a.idom == b.idom


def _results_identical(legacy: dict, fast: dict) -> bool:
    if legacy.keys() != fast.keys():
        return False
    for key, lhs in legacy.items():
        rhs = fast[key]
        if key in ("dom", "pdom", "edom", "epdom"):
            if not _tree_eq(lhs, rhs):
                return False
        elif lhs != rhs:
            return False
    return True


def _best_ms(fn: Callable[[], Any], repeat: int) -> tuple[float, Any]:
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0, result


def _bench_workload(
    name: str,
    family: str,
    rows_spec: list[tuple[str, Any]],
    legacy: Callable,
    fast: Callable,
    repeat: int,
) -> dict[str, Any]:
    rows = []
    for label, graph in rows_spec:
        legacy_ms, legacy_result = _best_ms(lambda: legacy(graph), repeat)
        fast_ms, fast_result = _best_ms(lambda: fast(graph), repeat)
        rows.append({
            "size": label,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "legacy_ms": round(legacy_ms, 3),
            "fast_ms": round(fast_ms, 3),
            "speedup": round(legacy_ms / fast_ms, 2) if fast_ms else 0.0,
            "identical": _results_identical(legacy_result, fast_result),
        })
    return {
        "name": name,
        "family": family,
        "rows": rows,
        "largest": rows[-1],
    }


def _corpus_graphs(suite: list[dict]) -> list[tuple[str, Any]]:
    """``(label, CFG)`` for every plain analysis spec of ``suite``."""
    return [
        (spec["label"],
         build_cfg(resolve_family(spec["family"])(*spec["args"])))
        for spec in suite
    ]


def _corpus_legacy(graphs: list[tuple[str, Any]]) -> dict[str, dict]:
    """The PR-2 fast path, per program: a shared CSR snapshot feeding the
    four bitset kernels (each building its own expression space, as the
    registered passes do) plus vector constant propagation.  This is the
    per-program work the batch driver performs today for the five results
    the fused arena sweep produces."""
    from repro.opt.cfg_constprop import cfg_constant_propagation

    out: dict[str, dict] = {}
    for label, graph in graphs:
        csr = build_csr(graph)
        out[label] = {
            "available": available_bitsets(graph, csr=csr),
            "anticipatable": anticipatable_bitsets(graph, csr=csr),
            "liveness": liveness_bitsets(graph, csr=csr),
            "reaching": reaching_bitsets(graph, csr=csr),
            "constprop": cfg_constant_propagation(graph),
        }
    return out


def bench_arena_fused(smoke: bool = False, repeat: int = 3) -> dict[str, Any]:
    """The arena workload: fused corpus solve vs the per-program object
    path, on growing prefixes of the 204-program equivalence corpus.

    The fast side solves a *pre-lowered* corpus -- the arena is the
    persistent representation the batch driver ships and reuses, so (as
    with the edit-replay workload's persistent structures) its one-time
    construction is amortized and disclosed separately per row as
    ``lower_ms``, alongside the serialized corpus size the pool would
    put on the wire (``arena_bytes``).  Both sides' decoded results are
    compared for byte-identity on every row.
    """
    from repro.arena import ArenaCorpus, ExpressionPool, analyze_corpus

    graphs = _corpus_graphs(equivalence_suite(smoke=smoke))
    rows = []
    for count in ARENA_SLICES_SMOKE if smoke else ARENA_SLICES:
        subset = graphs[:count]

        def build() -> ArenaCorpus:
            corpus = ArenaCorpus(ExpressionPool())
            for label, graph in subset:
                corpus.add(graph, label=label)
            return corpus

        legacy_ms, legacy_result = _best_ms(
            lambda: _corpus_legacy(subset), repeat
        )
        lower_ms, corpus = _best_ms(build, repeat)
        fast_ms, fast_result = _best_ms(lambda: analyze_corpus(corpus), repeat)
        rows.append({
            "size": str(count),
            "nodes": sum(g.num_nodes for _, g in subset),
            "edges": sum(g.num_edges for _, g in subset),
            "legacy_ms": round(legacy_ms, 3),
            "fast_ms": round(fast_ms, 3),
            "lower_ms": round(lower_ms, 3),
            "arena_bytes": len(corpus.to_bytes()),
            "speedup": round(legacy_ms / fast_ms, 2) if fast_ms else 0.0,
            "identical": legacy_result == fast_result,
        })
    return {
        "name": "arena-fused",
        "family": "equivalence_corpus",
        "rows": rows,
        "largest": rows[-1],
    }


def bench_sparse_clients(smoke: bool = False, repeat: int = 3) -> dict[str, Any]:
    """The PR-9 workload: sparse range + taint clients vs their dense
    per-edge reference twins, on the F1 sparse-use ladder.

    Each row runs both client analyses end to end on both sides,
    compares the *fact surfaces* for identity, and discloses the
    visited-work counters (``dense_visits`` vs ``sparse_visits``) so the
    asymptotic claim -- the sparse propagation graph touches live names
    only -- is checked in alongside the wall-clock ratio.
    """
    from repro.sparse.range_analysis import (
        range_analysis,
        range_analysis_reference,
    )
    from repro.sparse.taint import taint_analysis, taint_analysis_reference
    from repro.util.counters import WorkCounter

    sizes = SPARSE_CLIENT_SIZES_SMOKE if smoke else SPARSE_CLIENT_SIZES
    rows = []
    for regions in sizes:
        graph = build_cfg(sparse_use_program(regions, vars_per_region=3))
        counters: dict[str, WorkCounter] = {}

        def legacy() -> tuple:
            counter = counters["legacy"] = WorkCounter()
            return (
                range_analysis_reference(graph, counter=counter).facts(),
                taint_analysis_reference(graph, counter=counter).facts(),
            )

        def fast() -> tuple:
            counter = counters["fast"] = WorkCounter()
            return (
                range_analysis(graph, counter=counter).facts(),
                taint_analysis(graph, counter=counter).facts(),
            )

        legacy_ms, legacy_result = _best_ms(legacy, repeat)
        fast_ms, fast_result = _best_ms(fast, repeat)
        dense_visits = (
            counters["legacy"]["dense_visits"]
            + counters["legacy"]["dense_taint_visits"]
        )
        sparse_visits = counters["fast"]["sparse_visits"]
        rows.append({
            "size": f"R={regions}",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "legacy_ms": round(legacy_ms, 3),
            "fast_ms": round(fast_ms, 3),
            "dense_visits": dense_visits,
            "sparse_visits": sparse_visits,
            "speedup": round(legacy_ms / fast_ms, 2) if fast_ms else 0.0,
            "identical": (
                legacy_result == fast_result
                and sparse_visits < dense_visits
            ),
        })
    return {
        "name": "sparse-clients",
        "family": "sparse_use_program",
        "rows": rows,
        "largest": rows[-1],
    }


def run_bench(
    tag: str = "dev",
    smoke: bool = False,
    repeat: int | None = None,
    batch_workers: int = 0,
    batch_programs: int = 6,
    serve: bool = False,
) -> dict[str, Any]:
    """Run the comparative batteries and a small batch sweep; return the
    ``repro.bench/1`` payload.

    ``serve=True`` appends the ``serve-loadgen`` workload: a live daemon
    on a private port, timed warm vs the cold one-shot twin and
    byte-compared against it, plus the seeded hot/cold/edit request mix
    (hit-rate, p50/p95, QPS).
    """
    if repeat is None:
        repeat = 3 if smoke else 7
    c1_sizes = C1_SIZES_SMOKE if smoke else C1_SIZES
    f4_sizes = F4_SIZES_SMOKE if smoke else F4_SIZES

    c1_rows = [
        (str(n), build_cfg(diamond_chain(n))) for n in c1_sizes
    ]
    f4_rows = [
        (f"V={v},U={u}", build_cfg(wide_variable_program(v, uses_per_var=u)))
        for v, u in f4_sizes
    ]
    workloads = [
        _bench_workload(
            "c1-structure", "diamond_chain", c1_rows,
            _structure_legacy, _structure_fast, repeat,
        ),
        _bench_workload(
            "f4-dataflow", "wide_variable_program", f4_rows,
            _dataflow_legacy, _dataflow_fast, repeat,
        ),
    ]
    from repro.regions.replay import bench_edit_replay, bench_root_balance

    replay_sizes = REPLAY_SIZES_SMOKE if smoke else REPLAY_SIZES
    workloads.append(bench_edit_replay(replay_sizes, repeat=repeat))
    balance_sizes = BALANCE_SIZES_SMOKE if smoke else BALANCE_SIZES
    workloads.append(bench_root_balance(balance_sizes, repeat=repeat))
    workloads.append(bench_arena_fused(smoke=smoke, repeat=repeat))
    workloads.append(bench_sparse_clients(smoke=smoke, repeat=repeat))
    if serve:
        from repro.serve.loadgen import bench_serve_loadgen

        workloads.append(bench_serve_loadgen(smoke=smoke))
    return {
        "schema": BENCH_SCHEMA,
        "tag": tag,
        "mode": "smoke" if smoke else "full",
        "python": sys.version.split()[0],
        "repeat": repeat,
        "workloads": workloads,
        "batch": run_batch(
            suite=default_suite(batch_programs), workers=batch_workers
        ),
    }


def check_regression(
    payload: dict, baseline: dict, tolerance: float = 0.75
) -> list[str]:
    """Failures of ``payload`` against ``baseline``.

    A workload regresses when its largest-size speedup drops below
    ``tolerance`` (default: more than 25% down) of the baseline's, or
    when any row's results stopped being identical to legacy.
    """
    failures: list[str] = []
    current = {w["name"]: w for w in payload.get("workloads", ())}
    for base in baseline.get("workloads", ()):
        name = base["name"]
        if name not in current:
            failures.append(f"{name}: missing from current run")
            continue
        workload = current[name]
        for row in workload["rows"]:
            if not row["identical"]:
                failures.append(
                    f"{name} size {row['size']}: fast/legacy results differ"
                )
        want = base["largest"]["speedup"] * tolerance
        got = workload["largest"]["speedup"]
        if got < want:
            failures.append(
                f"{name}: largest-size speedup {got:.2f}x is below "
                f"{tolerance:.0%} of baseline "
                f"{base['largest']['speedup']:.2f}x"
            )
    return failures


# -- parallel batch driver ---------------------------------------------------


def _fault_raise(*args):
    """Test family: building the program always raises (poison spec)."""
    raise RuntimeError("injected family failure (test hook)")


def _fault_hang(*args):
    """Test family: building the program never returns (hung worker)."""
    while True:
        time.sleep(0.05)


def _fault_crash(*args):
    """Test family: the worker process dies without reporting."""
    os._exit(3)


#: family name -> program builder, resolvable inside spawn workers.
#: The ``__*__`` families misbehave on purpose; they exist so the
#: hardened driver's timeout / crash / quarantine paths are testable
#: with real processes (monkeypatching does not survive ``spawn``).
_FAMILIES: dict[str, Callable] = {
    "random": lambda seed, size, num_vars: random_program(
        seed, size=size, num_vars=num_vars
    ),
    "diamond": diamond_chain,
    "wide": wide_variable_program,
    "irreducible": irreducible_program,
    "jump": random_jump_program,
    "array": array_program,
    "loopnest": loop_nest,
    "sparse": sparse_use_program,
    "lintdefects": lint_defect_program,
    "__raise__": _fault_raise,
    "__hang__": _fault_hang,
    "__crash__": _fault_crash,
}


def resolve_family(name: str) -> Callable:
    """The program builder for family ``name`` (spawn-safe lookup)."""
    try:
        return _FAMILIES[name]
    except KeyError:
        from repro.robust.errors import InputError

        known = ", ".join(sorted(k for k in _FAMILIES if not k.startswith("_")))
        raise InputError(
            f"unknown program family {name!r}; known: {known}",
            phase="batch-spec",
        ) from None


def default_suite(programs: int = 8, size: int = 80) -> list[dict]:
    """A mixed workload suite: seeded random programs plus one ladder of
    each structured family."""
    suite = [
        {"label": f"random-{seed}", "family": "random",
         "args": [seed, size, 6]}
        for seed in range(max(1, programs - 2))
    ]
    suite.append({"label": "diamond-120", "family": "diamond", "args": [120]})
    suite.append({"label": "wide-96", "family": "wide", "args": [96, 2]})
    return suite[:max(1, programs)]


def equivalence_suite(smoke: bool = False) -> list[dict]:
    """The 204-program population of ``tests/test_perf_equivalence.py``
    as batch specs: structured random, irreducible, goto soup, plus one
    of each ladder family.

    ``smoke`` keeps the same family mix but trims the seed sweeps to 24
    programs -- still more than the registered pass count, so a chaos
    sweep over it exercises every pass.
    """
    randoms, irreducibles, jumps = (12, 4, 4) if smoke else (120, 40, 40)
    suite = [
        {"label": f"random-{seed}", "family": "random",
         "args": [seed, 18, 4]}
        for seed in range(randoms)
    ]
    suite += [
        {"label": f"irreducible-{seed}", "family": "irreducible",
         "args": [seed, 5]}
        for seed in range(irreducibles)
    ]
    suite += [
        {"label": f"jump-{seed}", "family": "jump", "args": [seed, 7]}
        for seed in range(jumps)
    ]
    suite += [
        {"label": "diamond-60", "family": "diamond", "args": [60]},
        {"label": "loopnest-3x3", "family": "loopnest", "args": [3, 3]},
        {"label": "wide-24", "family": "wide", "args": [24, 2]},
        {"label": "sparse-8", "family": "sparse", "args": [8]},
    ]
    return suite


def lint_suite(smoke: bool = False) -> list[dict]:
    """The lint batch battery: planted-defect programs plus a slice of
    the equivalence-corpus families, all run in lint mode (rules plus
    oracle verification) under the same supervised-pool driver."""
    planted, randoms = (4, 4) if smoke else (16, 12)
    suite = [
        {"label": f"lintdefects-{seed}", "family": "lintdefects",
         "args": [seed], "lint": True}
        for seed in range(planted)
    ]
    suite += [
        {"label": f"lint-random-{seed}", "family": "random",
         "args": [seed, 18, 4], "lint": True}
        for seed in range(randoms)
    ]
    suite += [
        {"label": "lint-diamond-24", "family": "diamond", "args": [24],
         "lint": True},
        {"label": "lint-loopnest-2x2", "family": "loopnest", "args": [2, 2],
         "lint": True},
    ]
    return suite


def sparse_suite(smoke: bool = False) -> list[dict]:
    """The sparse-client batch battery: programs analyzed through the
    sparse engine's client passes only (def-use, SSA, ranges, taint,
    SCVN, NTSCD), each checked against its dense reference twin inside
    the worker.  The mix leans on the families where sparseness matters:
    the F1 sparse-use ladder, irreducible flowgraphs, and goto soup
    (whose infinite loops are exactly NTSCD's extra coverage)."""
    randoms, irreducibles, jumps = (4, 2, 2) if smoke else (12, 6, 6)
    suite = [
        {"label": f"sparse-random-{seed}", "family": "random",
         "args": [seed, 18, 4], "sparse": True}
        for seed in range(randoms)
    ]
    suite += [
        {"label": f"sparse-irreducible-{seed}", "family": "irreducible",
         "args": [seed, 5], "sparse": True}
        for seed in range(irreducibles)
    ]
    suite += [
        {"label": f"sparse-jump-{seed}", "family": "jump",
         "args": [seed, 7], "sparse": True}
        for seed in range(jumps)
    ]
    suite += [
        {"label": "sparse-ladder-12", "family": "sparse", "args": [12],
         "sparse": True},
        {"label": "sparse-wide-24", "family": "wide", "args": [24, 2],
         "sparse": True},
    ]
    return suite


#: ``repro batch --suite`` vocabulary: name -> builder(args namespace-ish
#: keyword arguments).  Kept as data so the CLI can both validate and
#: list the choices without argparse hard-coding them.
BATCH_SUITES = ("default", "equivalence", "lint", "sparse")


def resolve_suite(
    name: str, smoke: bool = False, programs: int = 8, size: int = 80
) -> list[dict]:
    """The batch suite for ``name``; unknown names raise a one-line
    :class:`~repro.robust.errors.InputError` listing what is available
    (instead of a bare traceback or an argparse-only check)."""
    if name == "default":
        return default_suite(programs, size=size)
    if name == "equivalence":
        return equivalence_suite(smoke=smoke)
    if name == "lint":
        return lint_suite(smoke=smoke)
    if name == "sparse":
        return sparse_suite(smoke=smoke)
    from repro.robust.errors import InputError

    known = ", ".join(BATCH_SUITES)
    raise InputError(
        f"unknown batch suite {name!r}; available suites: {known}",
        phase="batch-suite",
    )


def _analyze_one(spec: dict) -> dict:
    """Build and analyze one program; never raises.

    A failing spec produces a per-spec error row (``label`` + structured
    ``error`` record) so one poison program can no longer take down its
    whole chunk, let alone the run.

    Specs with ``"sparse": True`` run the sparse-engine client passes
    only (def-use, ranges, taint, SCVN, NTSCD) and cross-check each
    result against its dense reference twin inside the worker, reporting
    the agreement flags on the row.  Specs with ``"lint": True`` run the
    diagnostics engine (rule passes
    plus oracle verification) instead of the plain analysis menu; the
    program is round-tripped through the pretty-printer so diagnostics
    carry genuine source spans.  Specs may carry raw ``"source"`` text
    instead of ``"family"``/``"args"`` (the serve daemon's batch path),
    and lint specs with ``"sarif": True`` attach the SARIF 2.1.0
    document to the row.  Specs with a ``"fuzz"`` entry dispatch
    to one mutation trial of :mod:`repro.fuzz.harness` (mutate, run
    oracles, report verdicts) -- that is how ``repro fuzz --jobs`` fans
    trials across the supervised pool.  Specs with ``"regions": True``
    summarize one subtree bucket of the program structure tree for one
    analysis (:func:`repro.regions.parallel.summarize_subtree`) -- the
    region-parallel phase-1 fan-out rides the same pool.  Specs with
    ``"arena": True`` carry a serialized :class:`~repro.arena.arena.
    ArenaCorpus` for a whole chunk of programs and dispatch to the fused
    arena sweep (:func:`_analyze_arena_chunk`).
    """
    from repro.pipeline.manager import AnalysisManager
    from repro.robust.errors import error_record
    from repro.util.metrics import Metrics

    try:
        if spec.get("arena"):
            return _analyze_arena_chunk(spec)
        if spec.get("fuzz"):
            from repro.fuzz.harness import run_trial

            return run_trial(spec)
        if spec.get("regions"):
            from repro.regions.parallel import summarize_subtree

            return summarize_subtree(spec)
        if "source" in spec:
            # A raw-source spec (the serve daemon's batch-sarif path):
            # the text is the document, so spans stay genuine without a
            # pretty-print round trip.
            from repro.lang.parser import parse_program

            program = parse_program(spec["source"])
        else:
            program = resolve_family(spec["family"])(*spec["args"])
        if spec.get("sparse"):
            from repro.controldep.ntscd import ntscd_reference
            from repro.defuse.chains import build_def_use_chains_reference
            from repro.sparse.range_analysis import range_analysis_reference
            from repro.sparse.taint import taint_analysis_reference

            graph = build_cfg(program)
            manager = AnalysisManager(graph, metrics=Metrics())
            t0 = time.perf_counter()
            chains = manager.get("defuse")
            ranges = manager.get("sparse-range")
            taint = manager.get("sparse-taint")
            scvn = manager.get("scvn")
            deps = manager.get("ntscd")
            wall_ms = (time.perf_counter() - t0) * 1000.0

            def chain_set(result):
                return {(c.var, c.def_node, c.use_node)
                        for c in result.chains}

            agree = {
                "chains": chain_set(chains)
                == chain_set(build_def_use_chains_reference(graph)),
                "range": ranges.facts()
                == range_analysis_reference(graph).facts(),
                "taint": taint.facts()
                == taint_analysis_reference(graph).facts(),
                "ntscd": deps.facts() == ntscd_reference(graph).facts(),
            }
            return {
                "label": spec["label"],
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "wall_ms": round(wall_ms, 3),
                "sparse": {
                    "chains": chains.size(),
                    "dead_edges": len(ranges.dead_edges),
                    "tainted_sinks": sum(
                        1 for hit in taint.sinks.values() if hit
                    ),
                    "ntscd_deps": sum(
                        len(ps) for ps in deps.deps.values()
                    ),
                    "scvn_classes": scvn.num_classes(),
                    "agree": agree,
                },
                "passes": {
                    row["pass"]: {
                        "work": row["work_total"],
                        "wall_ms": row["wall_ms"],
                    }
                    for row in manager.report()
                },
            }
        if spec.get("lint"):
            from repro.lang.parser import parse_program
            from repro.lang.pretty import pretty_program
            from repro.lint.engine import LintEngine
            from repro.lint.rules import lint_registry

            if "source" not in spec:
                program = parse_program(pretty_program(program))
            graph = build_cfg(program)
            manager = AnalysisManager(
                graph, registry=lint_registry(), metrics=Metrics()
            )
            t0 = time.perf_counter()
            result = LintEngine(graph, manager=manager).run(verify=True)
            wall_ms = (time.perf_counter() - t0) * 1000.0
            summary = result.summary()
            out = {
                "label": spec["label"],
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "wall_ms": round(wall_ms, 3),
                "lint": {
                    "total": summary["total"],
                    "by_severity": summary["by_severity"],
                    "verified": summary["verified"],
                    "demoted": summary["demoted"],
                    "refuted": summary["refuted"],
                    "unverified_definite": result.unverified_definite(),
                },
                "passes": {
                    row["pass"]: {
                        "work": row["work_total"],
                        "wall_ms": row["wall_ms"],
                    }
                    for row in manager.report()
                },
            }
            if spec.get("sarif"):
                from repro.lint.output import sarif_payload

                out["sarif"] = sarif_payload(
                    spec.get("label") or "", result.diagnostics
                )
            return out
        graph = build_cfg(program)
        manager = AnalysisManager(graph, metrics=Metrics())
        t0 = time.perf_counter()
        manager.run_all()
        wall_ms = (time.perf_counter() - t0) * 1000.0
        return {
            "label": spec["label"],
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "wall_ms": round(wall_ms, 3),
            "passes": {
                row["pass"]: {
                    "work": row["work_total"],
                    "wall_ms": row["wall_ms"],
                }
                for row in manager.report()
            },
        }
    except Exception as exc:
        return {"label": spec.get("label"), "error": error_record(exc)}


def _analyze_arena_chunk(spec: dict) -> dict:
    """Worker body for one serialized arena chunk: decode the corpus,
    fused-solve every program against one shared
    :class:`~repro.arena.kernels.CorpusOrder`, and report one sub-row per
    program (flattened into the run's row list by :func:`run_batch`).

    Any decode or solve failure drops the whole chunk onto its fallback
    twin -- the member specs re-analyzed through the object-graph
    pipeline -- so a corrupt or version-skewed payload degrades to
    slower rows, never lost ones.  The failure is recorded on the chunk
    row as ``fallback``.
    """
    from repro.robust.errors import error_record
    from repro.util.counters import WorkCounter

    try:
        from repro.arena import ArenaCorpus, CorpusOrder, analyze_arena

        corpus = ArenaCorpus.from_bytes(spec["arena_bytes"])
        counter = WorkCounter()
        order = CorpusOrder(corpus.pool)
        rows = []
        for arena in corpus.programs:
            before = counter.snapshot()
            t0 = time.perf_counter()
            analyze_arena(arena, corpus.pool, order=order, counter=counter)
            wall_ms = (time.perf_counter() - t0) * 1000.0
            work = sum(counter.diff(before).values())
            rows.append({
                "label": arena.label,
                "nodes": arena.n,
                "edges": arena.m,
                "wall_ms": round(wall_ms, 3),
                "passes": {
                    "arena-fused": {
                        "work": work, "wall_ms": round(wall_ms, 3),
                    },
                },
            })
        return {
            "label": spec["label"],
            "arena_chunk": True,
            "programs": len(rows),
            "rows": rows,
        }
    except Exception as exc:
        rows = [_analyze_one(sub) for sub in spec.get("specs", [])]
        return {
            "label": spec.get("label"),
            "arena_chunk": True,
            "fallback": error_record(exc),
            "programs": len(rows),
            "rows": rows,
        }


def build_arena_payloads(suite: list[dict], chunk_size: int) -> list[dict]:
    """Parent-side lowering for arena payload mode: plain analysis specs
    are chunked and each chunk lowered into one serialized
    :class:`~repro.arena.arena.ArenaCorpus` spec (pool tables ship once
    per chunk).  Specs in a special mode (lint / fuzz / regions) and
    specs whose program builder fails keep their object-graph path: they
    pass through unchanged, so poison specs still produce their usual
    per-spec error rows."""
    from repro.arena import ArenaCorpus, ExpressionPool

    plain: list[dict] = []
    passthrough: list[dict] = []
    for spec in suite:
        # Misbehaving test families must keep their supervised worker:
        # lowering them here would hang or kill the parent process.
        if (
            spec.get("lint") or spec.get("fuzz") or spec.get("regions")
            or str(spec.get("family", "")).startswith("__")
        ):
            passthrough.append(spec)
        else:
            plain.append(spec)
    shipped: list[dict] = []
    for i, chunk in enumerate(_chunked(plain, chunk_size)):
        corpus = ArenaCorpus(ExpressionPool())
        members = []
        for spec in chunk:
            try:
                graph = build_cfg(
                    resolve_family(spec["family"])(*spec["args"])
                )
                corpus.add(graph, label=spec["label"])
            except Exception:
                passthrough.append(spec)
            else:
                members.append(spec)
        if members:
            shipped.append({
                "label": f"arena-chunk-{i}",
                "arena": True,
                "arena_bytes": corpus.to_bytes(),
                "specs": members,
            })
    return shipped + passthrough


def _analyze_chunk(specs: list[dict]) -> list[dict]:
    """Worker body: one row per spec of the chunk, errors included.

    Imports stay inside :func:`_analyze_one` so a ``spawn`` worker only
    unpickles plain dict specs and resolves everything else from its own
    interpreter.
    """
    return [_analyze_one(spec) for spec in specs]


def _chunked(suite: list[dict], chunk_size: int) -> list[list[dict]]:
    return [
        suite[i:i + chunk_size] for i in range(0, len(suite), chunk_size)
    ]


def _batch_minimizer(spec: dict, error: dict) -> dict | None:
    """Delta-debug a quarantined spec down to a minimal repro.

    Only deterministic in-worker failures reach here; the predicate
    accepts a candidate iff analyzing it raises the same exception type,
    which keeps the minimizer from wandering onto a different bug.
    """
    from repro.lang.pretty import pretty_program
    from repro.pipeline.manager import AnalysisManager
    from repro.robust.minimize import minimize_program
    from repro.util.metrics import Metrics

    try:
        program = resolve_family(spec["family"])(*spec["args"])
        source = pretty_program(program)
    except Exception:
        return None  # the failure is in the family itself; nothing to shrink

    def fails(candidate) -> bool:
        try:
            AnalysisManager(build_cfg(candidate), metrics=Metrics()).run_all()
        except Exception as exc:
            return type(exc).__name__ == error.get("type")
        return False

    minimized, evals = minimize_program(source, fails, budget=200)
    return {
        "schema": "repro.quarantine/1",
        "label": spec.get("label"),
        "family": spec["family"],
        "args": list(spec["args"]),
        "error": error,
        "source": source,
        "minimized_source": minimized,
        "original_stmts": source.count("\n"),
        "minimized_stmts": minimized.count("\n"),
        "predicate_evals": evals,
    }


def run_batch(
    suite: list[dict] | None = None,
    workers: int | None = None,
    chunk_size: int | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
    quarantine_dir: str | None = None,
    payload_mode: str = "specs",
) -> dict[str, Any]:
    """Analyze ``suite`` across a process pool; aggregate per-pass metrics.

    ``workers=0`` runs in-process (deterministic, no pool -- the CI and
    test default); ``workers=None`` uses the CPU count.  The pooled path
    runs one supervised process per program
    (:class:`repro.robust.pool.SupervisedPool`): a hung worker is
    terminated at ``timeout_s``, a crashed or failing one is retried
    ``retries`` times with backoff and then quarantined -- with a
    delta-debugged minimized repro written to ``quarantine_dir``.

    ``payload_mode="arena"`` ships each chunk of plain analysis specs as
    one serialized :class:`~repro.arena.arena.ArenaCorpus` (see
    :func:`build_arena_payloads`) and workers run the fused arena sweep;
    special-mode specs keep their object path.  In both modes the time
    spent building the IPC payloads is reported as its own
    ``ipc_serialize_ms`` metric (with ``ipc_payload_bytes``) rather than
    being folded into ``pool_wall_ms``.
    """
    import pickle

    if suite is None:
        suite = default_suite()
    if workers is None:
        workers = os.cpu_count() or 1
    if chunk_size is None:
        chunk_size = max(1, (len(suite) + max(workers, 1) * 2 - 1)
                         // (max(workers, 1) * 2))
    if payload_mode not in ("specs", "arena"):
        from repro.robust.errors import InputError

        raise InputError(
            f"unknown batch payload mode {payload_mode!r}; available: "
            f"specs, arena",
            phase="batch-payload",
        )

    t_ser = time.perf_counter()
    if payload_mode == "arena":
        shipped = build_arena_payloads(suite, chunk_size)
    else:
        shipped = suite
    # What actually crosses the pipe to a spawn worker, measured here so
    # pool_wall_ms is dispatch + analysis, not serialization.
    ipc_payload_bytes = sum(len(pickle.dumps(spec)) for spec in shipped)
    ipc_serialize_ms = (time.perf_counter() - t_ser) * 1000.0

    t0 = time.perf_counter()
    if workers <= 0:
        chunks = _chunked(shipped, chunk_size)
        rows = [row for chunk in chunks for row in _analyze_chunk(chunk)]
        incidents = None
    else:
        from repro.robust.incidents import IncidentLog
        from repro.robust.pool import SupervisedPool

        incidents = IncidentLog()
        pool = SupervisedPool(
            workers,
            timeout_s=timeout_s,
            retries=retries,
            incidents=incidents,
            minimizer=_batch_minimizer,
        )
        rows = pool.run(shipped)
        chunks = shipped  # one supervised process per payload
    pool_wall_ms = (time.perf_counter() - t0) * 1000.0

    # Flatten arena chunk rows into their per-program sub-rows.
    flat_rows: list[dict] = []
    arena_chunks = 0
    arena_fallbacks = 0
    for row in rows:
        if row.get("arena_chunk"):
            arena_chunks += 1
            if row.get("fallback"):
                arena_fallbacks += 1
            flat_rows.extend(row["rows"])
        else:
            flat_rows.append(row)
    rows = flat_rows

    ok_rows = [row for row in rows if "error" not in row]
    error_rows = [row for row in rows if "error" in row]
    quarantined = [row for row in error_rows if row.get("quarantined")]
    passes: dict[str, dict[str, float]] = {}
    for row in ok_rows:
        for name, stats in row["passes"].items():
            agg = passes.setdefault(name, {"work": 0, "wall_ms": 0.0})
            agg["work"] += stats["work"]
            agg["wall_ms"] += stats["wall_ms"]
    for agg in passes.values():
        agg["wall_ms"] = round(agg["wall_ms"], 3)

    if quarantine_dir and quarantined:
        os.makedirs(quarantine_dir, exist_ok=True)
        for row in quarantined:
            record = row.get("quarantine") or {
                "schema": "repro.quarantine/1",
                "label": row.get("label"),
                "error": row.get("error"),
                "failures": row.get("failures"),
            }
            path = os.path.join(quarantine_dir, f"{row['label']}.json")
            write_payload(record, path)

    lint_rows = [row for row in ok_rows if "lint" in row]

    payload = {
        "programs": len(rows),
        "workers": workers,
        "chunks": len(chunks),
        "payload_mode": payload_mode,
        "pool_wall_ms": round(pool_wall_ms, 3),
        "ipc_serialize_ms": round(ipc_serialize_ms, 3),
        "ipc_payload_bytes": ipc_payload_bytes,
        "analysis_wall_ms": round(sum(r["wall_ms"] for r in ok_rows), 3),
        "rows": rows,
        "passes": passes,
    }
    if arena_chunks:
        payload["arena_chunks"] = arena_chunks
    if arena_fallbacks:
        payload["arena_fallbacks"] = arena_fallbacks
    if lint_rows:
        payload["lint"] = {
            "programs": len(lint_rows),
            "findings": sum(r["lint"]["total"] for r in lint_rows),
            "verified": sum(r["lint"]["verified"] for r in lint_rows),
            "demoted": sum(r["lint"]["demoted"] for r in lint_rows),
            "refuted": sum(r["lint"]["refuted"] for r in lint_rows),
            "unverified_definite": sum(
                r["lint"]["unverified_definite"] for r in lint_rows
            ),
        }
    if error_rows:
        payload["errors"] = len(error_rows)
        payload["quarantined"] = len(quarantined)
    if incidents is not None and len(incidents):
        payload["incidents"] = incidents.as_dicts()
    return payload


def write_payload(payload: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
