"""Establish the Section 2.1 CFG invariants on an arbitrary graph.

Normalization performs, in order:

1. **Unreachable-code removal** -- drop nodes not reachable from ``start``.
2. **NOP contraction** (optional) -- splice out pass-through nodes left by
   the builder's jump resolution; NOPs on self-loops are kept (they host
   bodyless infinite loops).
3. **Synthetic exits** -- the paper requires every node to reach ``end``.
   Each non-terminating region (e.g. ``while (1) { ... }``) gets a
   synthetic always-true switch spliced onto one of its edges whose false
   arm leads to ``end``: runtime behaviour is unchanged (the arm is never
   taken) but the structural requirement holds.
4. **Merge insertion** -- any non-merge node with several in-edges gets a
   fresh ``MERGE`` predecessor, making merges the only join points;
   degenerate single-input merges are spliced out.
5. **Validation** of the full invariant set.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.lang.ast_nodes import IntLit


def normalize(graph: CFG, contract_nops: bool = False) -> CFG:
    """Normalize ``graph`` in place (and return it for chaining)."""
    _prune_unreachable(graph)
    if contract_nops:
        _contract_nops(graph)
    _add_synthetic_exits(graph)
    _splice_single_input_merges(graph)
    _insert_merges(graph)
    graph.validate(normalized=True)
    return graph


def _prune_unreachable(graph: CFG) -> None:
    reachable = graph.reachable_from_start()
    # END stays even when unreachable: a program that loops forever still
    # has an exit node, and the synthetic-exit pass will reconnect it.
    reachable.add(graph.end)
    for nid in list(graph.nodes):
        if nid not in reachable:
            graph.remove_node(nid)


def _contract_nops(graph: CFG) -> None:
    changed = True
    while changed:
        changed = False
        for node in list(graph.nodes.values()):
            if node.kind is not NodeKind.NOP:
                continue
            succs = graph.succs(node.id)
            if len(succs) != 1 or succs[0] == node.id:
                continue  # keep self-loop hosts and malformed NOPs
            successor = succs[0]
            for edge in list(graph.in_edges(node.id)):
                if edge.src == node.id:
                    continue
                graph.add_edge(edge.src, successor, label=edge.label)
            graph.remove_node(node.id)
            changed = True


def _add_synthetic_exits(graph: CFG) -> None:
    while True:
        reaching = graph.reaching_end()
        stuck = set(graph.nodes) - reaching
        if not stuck:
            return
        # Pick any stuck node; every stuck node has an out-edge (only END
        # has none, and END trivially reaches itself).
        nid = min(stuck)
        edge = graph.out_edges(nid)[0]
        switch = graph.add_node(NodeKind.SWITCH, expr=IntLit(1))
        dst, label = edge.dst, edge.label
        graph.remove_edge(edge.id)
        graph.add_edge(nid, switch, label=label)
        graph.add_edge(switch, dst, label="T")
        graph.add_edge(switch, graph.end, label="F")


def _splice_single_input_merges(graph: CFG) -> None:
    for node in list(graph.nodes.values()):
        if node.kind is not NodeKind.MERGE:
            continue
        if len(graph.in_edges(node.id)) != 1 or len(graph.succs(node.id)) != 1:
            continue
        pred_edge = graph.in_edge(node.id)
        succ_edge = graph.out_edge(node.id)
        if pred_edge.src == node.id:
            continue
        graph.add_edge(pred_edge.src, succ_edge.dst, label=pred_edge.label)
        graph.remove_node(node.id)


def _insert_merges(graph: CFG) -> None:
    for node in list(graph.nodes.values()):
        if node.kind is NodeKind.MERGE:
            continue
        in_edges = list(graph.in_edges(node.id))
        if len(in_edges) < 2:
            continue
        merge = graph.add_node(NodeKind.MERGE)
        for edge in in_edges:
            graph.add_edge(edge.src, merge, label=edge.label)
            graph.remove_edge(edge.id)
        graph.add_edge(merge, node.id)


def split_critical_edges(graph: CFG) -> dict[int, int]:
    """Split every switch-to-merge edge with a NOP node, in place.

    A *critical edge* runs from a node with several successors to a node
    with several predecessors; in normalized form these are exactly the
    switch-to-merge edges (the ``repeat-until`` back edge of the paper's
    Section 5.2 discussion is the classic example).  Node-based PRE needs
    them split to have a place to insert code; the DFG algorithm does not,
    which is one of the claims we test.

    Returns a mapping from the id of each *removed* critical edge to the
    inserted NOP node id.
    """
    inserted: dict[int, int] = {}
    for edge in list(graph.edges.values()):
        src_kind = graph.node(edge.src).kind
        dst_kind = graph.node(edge.dst).kind
        if src_kind is NodeKind.SWITCH and dst_kind is NodeKind.MERGE:
            nop = graph.add_node(NodeKind.NOP)
            graph.add_edge(edge.src, nop, label=edge.label)
            graph.add_edge(nop, edge.dst)
            graph.remove_edge(edge.id)
            inserted[edge.id] = nop
    graph.validate(normalized=True)
    return inserted
