"""Direct execution of a CFG.

Used in two roles:

* a differential oracle against the AST interpreter (the builder and
  normalizer must preserve behaviour), and
* the semantics of *CFG-level transformations* -- partial redundancy
  elimination edits the graph, not the AST, so correctness and the
  "no path evaluates an expression more often" guarantee are checked by
  running the graph itself.

Shares the language semantics (and the evaluation-counting machinery) of
:mod:`repro.lang.interp`.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.cfg.graph import CFG, NodeKind
from repro.lang.errors import InterpError, StepLimitExceeded
from repro.lang.interp import ExecutionResult, _scalar, eval_expr


def run_cfg(
    graph: CFG,
    env: Mapping[str, int] | None = None,
    max_steps: int = 100_000,
    value_limit: int | None = None,
) -> ExecutionResult:
    """Execute ``graph`` from ``start`` to ``end``.

    ``value_limit``, when set, aborts (with :class:`InterpError`) as soon
    as an assigned scalar exceeds it in magnitude.  Generated programs
    can square a variable inside a loop, and such bigint blowup makes a
    bounded-step run arbitrarily slow; callers that execute untrusted
    programs (the lint oracle's refutation probes) cap values so those
    runs fail fast instead.

    >>> from repro.lang.parser import parse_program
    >>> from repro.cfg.builder import build_cfg
    >>> g = build_cfg(parse_program("x := 3; print x * x;"))
    >>> run_cfg(g).outputs
    [9]
    """
    state: dict[str, int] = dict(env or {})
    counts: Counter = Counter()
    outputs: list[int] = []
    steps = 0
    trace: list[int] = []
    current = graph.start
    while current != graph.end:
        trace.append(current)
        steps += 1
        if steps > max_steps:
            raise StepLimitExceeded(
                f"exceeded {max_steps} steps (infinite loop?)"
            )
        node = graph.node(current)
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None and node.expr is not None
            value = eval_expr(node.expr, state, counts)
            if (
                value_limit is not None
                and not isinstance(value, dict)
                and abs(value) > value_limit
            ):
                raise InterpError(
                    f"value of {node.target!r} exceeds limit {value_limit}"
                )
            state[node.target] = value
            current = graph.out_edge(current).dst
        elif node.kind is NodeKind.PRINT:
            assert node.expr is not None
            value = eval_expr(node.expr, state, counts)
            if isinstance(value, dict):
                raise InterpError("cannot print an array value")
            outputs.append(value)
            current = graph.out_edge(current).dst
        elif node.kind is NodeKind.SWITCH:
            assert node.expr is not None
            taken = _scalar(eval_expr(node.expr, state, counts))
            label = "T" if taken else "F"
            current = graph.switch_edge(current, label).dst
        elif node.kind in (NodeKind.MERGE, NodeKind.NOP, NodeKind.START):
            current = graph.out_edge(current).dst
        else:
            raise InterpError(f"cannot execute node {node!r}")
    trace.append(graph.end)
    return ExecutionResult(outputs, state, steps, counts, trace)
