"""Control flow graphs with explicit ``switch`` and ``merge`` nodes.

Section 2.1 of the paper defines the CFG flavour all its algorithms assume:

* a unique ``start`` (no predecessors) and ``end`` (no successors), with
  every node reachable from ``start`` and every node reaching ``end``;
* *switch* nodes that separate branching from computation (a conditional
  jump on a predicate expression);
* *merge* nodes that are the only join points (the only nodes with more
  than one incoming edge);
* *assignment* nodes for general straight-line computation.

:mod:`repro.cfg.graph` is the data structure, :mod:`repro.cfg.builder`
compiles ASTs into it, :mod:`repro.cfg.normalize` establishes the
invariants above for arbitrary graphs, :mod:`repro.cfg.interp` executes a
CFG directly (for differential testing against the AST interpreter and for
validating CFG-level transformations), and :mod:`repro.cfg.dot` renders
Graphviz.
"""

from repro.cfg.builder import build_cfg
from repro.cfg.dot import cfg_to_dot
from repro.cfg.graph import CFG, CFGError, Edge, Node, NodeKind
from repro.cfg.interp import run_cfg
from repro.cfg.normalize import normalize, split_critical_edges

__all__ = [
    "CFG",
    "CFGError",
    "Edge",
    "Node",
    "NodeKind",
    "build_cfg",
    "cfg_to_dot",
    "normalize",
    "run_cfg",
    "split_critical_edges",
]
