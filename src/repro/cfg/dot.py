"""Graphviz rendering of CFGs (and optional edge annotations).

Purely a debugging/teaching aid; nothing downstream depends on it.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.cfg.graph import CFG, NodeKind
from repro.lang.pretty import pretty_expr

_SHAPES = {
    NodeKind.START: "circle",
    NodeKind.END: "doublecircle",
    NodeKind.ASSIGN: "box",
    NodeKind.PRINT: "box",
    NodeKind.SWITCH: "diamond",
    NodeKind.MERGE: "invtriangle",
    NodeKind.NOP: "point",
}


def _default_label(graph: CFG, nid: int) -> str:
    node = graph.node(nid)
    if node.kind is NodeKind.ASSIGN:
        assert node.target is not None and node.expr is not None
        return f"{node.target} := {pretty_expr(node.expr)}"
    if node.kind is NodeKind.PRINT:
        assert node.expr is not None
        return f"print {pretty_expr(node.expr)}"
    if node.kind is NodeKind.SWITCH:
        assert node.expr is not None
        return pretty_expr(node.expr)
    return node.kind.value


def cfg_to_dot(
    graph: CFG,
    name: str = "cfg",
    edge_notes: Mapping[int, str] | None = None,
    node_label: Callable[[CFG, int], str] | None = None,
    node_attrs: Mapping[int, str] | None = None,
) -> str:
    """Render ``graph`` as Graphviz source.

    ``edge_notes`` maps edge ids to extra text shown on the edge -- handy
    for displaying dataflow facts, cycle-equivalence classes or dependence
    sources next to the control flow.  ``node_attrs`` maps node ids to
    extra attribute text appended inside the node's bracket list (e.g.
    ``'style=filled, fillcolor="#f4cccc"'`` to highlight lint findings).
    """
    label_of = node_label or _default_label
    lines = [f"digraph {name} {{", "  node [fontname=monospace];"]
    for nid in sorted(graph.nodes):
        node = graph.node(nid)
        text = label_of(graph, nid).replace('"', '\\"')
        shape = _SHAPES[node.kind]
        extra = ""
        if node_attrs and nid in node_attrs:
            extra = f", {node_attrs[nid]}"
        lines.append(f'  n{nid} [label="{text}", shape={shape}{extra}];')
    for eid in sorted(graph.edges):
        edge = graph.edge(eid)
        parts = []
        if edge.label:
            parts.append(edge.label)
        if edge_notes and eid in edge_notes:
            parts.append(edge_notes[eid])
        text = "\\n".join(parts).replace('"', '\\"')
        attr = f' [label="{text}"]' if text else ""
        lines.append(f"  n{edge.src} -> n{edge.dst}{attr};")
    lines.append("}")
    return "\n".join(lines) + "\n"
