"""The control flow graph data structure.

Edges are first-class objects with stable integer identities.  The paper
extends dominance, postdominance and control dependence to *edges*
(Definition 2), keys its cycle-equivalence classes on edges, and attaches
dependence-flow facts to edges -- so everything downstream indexes facts by
``Edge.id``.

A *normalized* CFG (established by :func:`repro.cfg.normalize.normalize`)
satisfies:

* exactly one ``START`` node (no in-edges, one out-edge) and one ``END``
  node (one in-edge unless the program is empty, no out-edges);
* ``MERGE`` nodes are exactly the nodes with more than one in-edge, and
  have exactly one out-edge;
* ``SWITCH`` nodes have at least two out-edges with distinct labels
  (``"T"``/``"F"`` for the binary switches the builder creates) and carry
  the branch predicate;
* ``ASSIGN``, ``PRINT`` and ``NOP`` nodes have exactly one in-edge and one
  out-edge;
* every node is reachable from ``start`` and reaches ``end``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.ast_nodes import Expr, Span, expr_vars


class CFGError(Exception):
    """Raised when a CFG operation or invariant check fails."""


class NodeKind(enum.Enum):
    """The node vocabulary of Section 2.1 (plus ``PRINT`` for observable
    output and ``NOP`` for synthetic pass-through nodes)."""

    START = "start"
    END = "end"
    ASSIGN = "assign"
    PRINT = "print"
    SWITCH = "switch"
    MERGE = "merge"
    NOP = "nop"


@dataclass
class Node:
    """A CFG node.

    ``target`` is the assigned variable for ``ASSIGN`` nodes; ``expr`` is
    the right-hand side (``ASSIGN``), the printed value (``PRINT``) or the
    branch predicate (``SWITCH``).
    """

    id: int
    kind: NodeKind
    target: str | None = None
    expr: Expr | None = None
    #: Source region of the statement this node came from.  ``None`` for
    #: START/END and the synthetic nodes normalization introduces
    #: (MERGE/NOP/loop-exit switches) -- diagnostics skip those.
    span: Span | None = None

    def defs(self) -> frozenset[str]:
        """Variables this node assigns."""
        if self.kind is NodeKind.ASSIGN:
            if self.target is None:
                raise CFGError(f"ASSIGN node {self.id} has no target")
            return frozenset((self.target,))
        return frozenset()

    def uses(self) -> frozenset[str]:
        """Variables this node reads."""
        if self.expr is None:
            return frozenset()
        return expr_vars(self.expr)

    def __repr__(self) -> str:
        if self.kind is NodeKind.ASSIGN:
            return f"Node({self.id}: {self.target} := ...)"
        return f"Node({self.id}: {self.kind.value})"


@dataclass
class Edge:
    """A CFG edge.  ``label`` is the branch arm for switch out-edges."""

    id: int
    src: int
    dst: int
    label: str | None = None

    def __repr__(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return f"Edge({self.id}: {self.src}->{self.dst}{tag})"


class CFG:
    """A mutable control flow graph.

    >>> g = CFG()
    >>> s = g.add_node(NodeKind.START)
    >>> e = g.add_node(NodeKind.END)
    >>> _ = g.add_edge(s, e)
    >>> g.start, g.end = s, e
    >>> g.validate()
    """

    def __init__(self) -> None:
        self.nodes: dict[int, Node] = {}
        self.edges: dict[int, Edge] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._next_node = 0
        self._next_edge = 0
        self.start: int = -1
        self.end: int = -1
        #: Bumped by every structural mutation (node/edge added or
        #: removed).  :class:`repro.pipeline.manager.AnalysisManager`
        #: compares it against the version it last analyzed to decide
        #: what to invalidate.
        self.shape_version: int = 0
        #: Bumped by in-place expression rewrites (constant folding, copy
        #: propagation, EPR substitution) via :meth:`note_rewrite` --
        #: those bypass the graph's mutators, so the rewriting transform
        #: must announce them.
        self.expr_version: int = 0

    # -- construction -------------------------------------------------------

    def add_node(
        self,
        kind: NodeKind,
        target: str | None = None,
        expr: Expr | None = None,
        span: Span | None = None,
    ) -> int:
        """Create a node and return its id."""
        if kind is NodeKind.ASSIGN and (target is None or expr is None):
            raise CFGError("ASSIGN nodes need a target and an expression")
        if kind in (NodeKind.SWITCH, NodeKind.PRINT) and expr is None:
            raise CFGError(f"{kind.value} nodes need an expression")
        nid = self._next_node
        self._next_node += 1
        self.shape_version += 1
        self.nodes[nid] = Node(nid, kind, target, expr, span)
        self._out[nid] = []
        self._in[nid] = []
        if kind is NodeKind.START and self.start < 0:
            self.start = nid
        if kind is NodeKind.END and self.end < 0:
            self.end = nid
        return nid

    def add_edge(self, src: int, dst: int, label: str | None = None) -> int:
        """Create an edge and return its id.  Out-edge order is insertion
        order, which the builder uses to keep switch arms as [T, F]."""
        if src not in self.nodes or dst not in self.nodes:
            raise CFGError(f"edge endpoints must exist: {src}->{dst}")
        eid = self._next_edge
        self._next_edge += 1
        self.shape_version += 1
        self.edges[eid] = Edge(eid, src, dst, label)
        self._out[src].append(eid)
        self._in[dst].append(eid)
        return eid

    def remove_edge(self, eid: int) -> None:
        edge = self.edges.pop(eid)
        self._out[edge.src].remove(eid)
        self._in[edge.dst].remove(eid)
        self.shape_version += 1

    def remove_node(self, nid: int) -> None:
        """Remove a node; all incident edges are removed too."""
        for eid in list(self._out[nid]) + list(self._in[nid]):
            if eid in self.edges:
                self.remove_edge(eid)
        del self.nodes[nid]
        del self._out[nid]
        del self._in[nid]
        self.shape_version += 1

    def note_rewrite(self, structural: bool = False) -> None:
        """Record an in-place rewrite that bypassed the graph's mutators.

        Transforms that assign ``node.expr`` (or ``node.target``)
        directly must call this so cached analyses can be invalidated.
        ``structural=True`` marks rewrites that change more than
        expression text -- e.g. renaming assignment targets -- and
        invalidates shape-derived analyses too.
        """
        if structural:
            self.shape_version += 1
        else:
            self.expr_version += 1

    # -- accessors ----------------------------------------------------------

    def node(self, nid: int) -> Node:
        return self.nodes[nid]

    def edge(self, eid: int) -> Edge:
        return self.edges[eid]

    def out_edges(self, nid: int) -> list[Edge]:
        return [self.edges[eid] for eid in self._out[nid]]

    def in_edges(self, nid: int) -> list[Edge]:
        return [self.edges[eid] for eid in self._in[nid]]

    def succs(self, nid: int) -> list[int]:
        return [self.edges[eid].dst for eid in self._out[nid]]

    def preds(self, nid: int) -> list[int]:
        return [self.edges[eid].src for eid in self._in[nid]]

    def out_edge(self, nid: int) -> Edge:
        """The unique out-edge of a single-successor node."""
        out = self._out[nid]
        if len(out) != 1:
            raise CFGError(f"node {nid} has {len(out)} out-edges, expected 1")
        return self.edges[out[0]]

    def in_edge(self, nid: int) -> Edge:
        """The unique in-edge of a single-predecessor node."""
        ins = self._in[nid]
        if len(ins) != 1:
            raise CFGError(f"node {nid} has {len(ins)} in-edges, expected 1")
        return self.edges[ins[0]]

    def switch_edge(self, nid: int, label: str) -> Edge:
        """The out-edge of switch ``nid`` labelled ``label``."""
        for edge in self.out_edges(nid):
            if edge.label == label:
                return edge
        raise CFGError(f"switch {nid} has no out-edge labelled {label!r}")

    def edge_between(self, src: int, dst: int) -> Edge:
        """The unique edge from ``src`` to ``dst`` (raises if 0 or many)."""
        found = [
            self.edges[eid] for eid in self._out[src] if self.edges[eid].dst == dst
        ]
        if len(found) != 1:
            raise CFGError(f"{len(found)} edges between {src} and {dst}")
        return found[0]

    def variables(self) -> frozenset[str]:
        """Every variable defined or used anywhere in the graph."""
        names: set[str] = set()
        for node in self.nodes.values():
            names |= node.defs()
            names |= node.uses()
        return frozenset(names)

    def expressions(self) -> frozenset[Expr]:
        """Every non-trivial expression and subexpression in the graph --
        the candidate set for redundancy elimination."""
        from repro.lang.ast_nodes import is_trivial, subexpressions

        found: set[Expr] = set()
        for node in self.nodes.values():
            if node.expr is not None:
                for sub in subexpressions(node.expr):
                    if not is_trivial(sub):
                        found.add(sub)
        return frozenset(found)

    def assign_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.kind is NodeKind.ASSIGN]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    # -- reachability ---------------------------------------------------------

    def reachable_from_start(self) -> set[int]:
        """Nodes reachable from ``start``."""
        return self._reach(self.start, forward=True)

    def reaching_end(self) -> set[int]:
        """Nodes from which ``end`` is reachable."""
        return self._reach(self.end, forward=False)

    def _reach(self, root: int, forward: bool) -> set[int]:
        if root not in self.nodes:
            return set()
        seen = {root}
        stack = [root]
        while stack:
            nid = stack.pop()
            nexts = self.succs(nid) if forward else self.preds(nid)
            for nxt in nexts:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    # -- validation -----------------------------------------------------------

    def validate(self, normalized: bool = False) -> None:
        """Check structural sanity; with ``normalized=True`` also check the
        full Section 2.1 invariants."""
        if self.start not in self.nodes or self.end not in self.nodes:
            raise CFGError("missing start or end node")
        if self.nodes[self.start].kind is not NodeKind.START:
            raise CFGError("start node has wrong kind")
        if self.nodes[self.end].kind is not NodeKind.END:
            raise CFGError("end node has wrong kind")
        if self._in[self.start]:
            raise CFGError("start must have no in-edges")
        if self._out[self.end]:
            raise CFGError("end must have no out-edges")
        reachable = self.reachable_from_start()
        if reachable != set(self.nodes):
            dead = sorted(set(self.nodes) - reachable)
            raise CFGError(f"nodes unreachable from start: {dead}")
        reaching = self.reaching_end()
        if reaching != set(self.nodes):
            stuck = sorted(set(self.nodes) - reaching)
            raise CFGError(f"nodes that cannot reach end: {stuck}")
        if not normalized:
            return
        for node in self.nodes.values():
            n_in = len(self._in[node.id])
            n_out = len(self._out[node.id])
            if node.kind is NodeKind.START:
                if n_out != 1:
                    raise CFGError("start must have exactly one out-edge")
            elif node.kind is NodeKind.END:
                if n_in > 1:
                    raise CFGError("end must have at most one in-edge")
            elif node.kind is NodeKind.MERGE:
                if n_in < 2 or n_out != 1:
                    raise CFGError(
                        f"merge {node.id} must have >=2 in-edges, 1 out-edge"
                    )
            elif node.kind is NodeKind.SWITCH:
                if n_in != 1 or n_out < 2:
                    raise CFGError(
                        f"switch {node.id} must have 1 in-edge, >=2 out-edges"
                    )
                labels = [e.label for e in self.out_edges(node.id)]
                if None in labels or len(set(labels)) != len(labels):
                    raise CFGError(
                        f"switch {node.id} out-edges need distinct labels"
                    )
            else:  # ASSIGN, PRINT, NOP
                if n_in != 1 or n_out != 1:
                    raise CFGError(
                        f"{node.kind.value} {node.id} must have 1 in, 1 out"
                    )

    # -- copying ---------------------------------------------------------------

    def copy(self) -> "CFG":
        """A structurally identical graph preserving node and edge ids."""
        dup = CFG()
        dup._next_node = self._next_node
        dup._next_edge = self._next_edge
        dup.shape_version = self.shape_version
        dup.expr_version = self.expr_version
        dup.start = self.start
        dup.end = self.end
        for nid, node in self.nodes.items():
            dup.nodes[nid] = Node(
                node.id, node.kind, node.target, node.expr, node.span
            )
        dup._out = {nid: list(eids) for nid, eids in self._out.items()}
        dup._in = {nid: list(eids) for nid, eids in self._in.items()}
        for eid, edge in self.edges.items():
            dup.edges[eid] = Edge(edge.id, edge.src, edge.dst, edge.label)
        return dup

    def __repr__(self) -> str:
        return f"CFG({self.num_nodes} nodes, {self.num_edges} edges)"
