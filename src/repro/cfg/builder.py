"""Compile an AST into a normalized CFG.

The builder reuses the interpreter's :func:`~repro.lang.interp.flatten`
jump-code pass, so the CFG has exactly the control structure the reference
interpreter executes -- a deliberate redundancy that makes the differential
test "AST execution == CFG execution" meaningful.

Jump instructions produce no nodes: the builder resolves chains of jumps to
their ultimate targets.  A cycle consisting solely of jumps (``label L:
goto L;``) has no instruction to host it, so it is hosted on a synthetic
``NOP`` node; normalization then gives the resulting bodyless infinite loop
a synthetic exit like any other non-terminating region.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.cfg.normalize import normalize
from repro.lang.ast_nodes import Program
from repro.lang.interp import (
    AssignInstr,
    BranchInstr,
    JumpInstr,
    PrintInstr,
    flatten,
)
from repro.robust.validate import check_cfg


def build_cfg(program: Program) -> CFG:
    """Build a normalized CFG for ``program``.

    >>> from repro.lang.parser import parse_program
    >>> g = build_cfg(parse_program("x := 1; print x;"))
    >>> g.validate(normalized=True)
    """
    instrs = flatten(program)
    graph = CFG()
    start = graph.add_node(NodeKind.START)
    end = graph.add_node(NodeKind.END)

    node_of: dict[int, int] = {}
    for i, instr in enumerate(instrs):
        if isinstance(instr, AssignInstr):
            node_of[i] = graph.add_node(
                NodeKind.ASSIGN,
                target=instr.target,
                expr=instr.expr,
                span=instr.span,
            )
        elif isinstance(instr, PrintInstr):
            node_of[i] = graph.add_node(
                NodeKind.PRINT, expr=instr.expr, span=instr.span
            )
        elif isinstance(instr, BranchInstr):
            node_of[i] = graph.add_node(
                NodeKind.SWITCH, expr=instr.cond, span=instr.span
            )

    memo: dict[int, int] = {}
    nop_targets: list[tuple[int, int]] = []

    def resolve(index: int) -> int:
        """The node where control lands when jumping to instruction
        ``index``, skipping over jump chains."""
        chain: list[int] = []
        chain_set: set[int] = set()
        i = index
        while True:
            if i >= len(instrs):
                result = end
                break
            if i in memo:
                result = memo[i]
                break
            instr = instrs[i]
            if not isinstance(instr, JumpInstr):
                result = node_of[i]
                break
            if i in chain_set:
                # A cycle of bare jumps: host it on a NOP node.
                nop = graph.add_node(NodeKind.NOP)
                memo[i] = nop
                nop_targets.append((nop, instr.target))
                result = nop
                break
            chain.append(i)
            chain_set.add(i)
            i = instr.target
        for j in chain:
            memo[j] = result
        return result

    graph.add_edge(start, resolve(0))
    for i, instr in enumerate(instrs):
        if isinstance(instr, (AssignInstr, PrintInstr)):
            graph.add_edge(node_of[i], resolve(i + 1))
        elif isinstance(instr, BranchInstr):
            graph.add_edge(node_of[i], resolve(i + 1), label="T")
            graph.add_edge(node_of[i], resolve(instr.target), label="F")
    for nop, target in nop_targets:
        graph.add_edge(nop, resolve(target))

    normalize(graph, contract_nops=True)
    check_cfg(graph, normalized=True, phase="build-cfg")
    return graph
