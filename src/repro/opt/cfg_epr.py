"""Dense CFG partial redundancy elimination (the Morel-Renvoise baseline).

The contrast with :mod:`repro.core.epr`:

* anticipatability/availability are computed *densely* -- set-valued
  facts over every expression at every CFG edge, whether or not the
  expression's operands are anywhere near -- which is the work profile
  the paper's Section 5 criticizes;
* critical (switch-to-merge) edges are split with empty blocks up front,
  the node-based tradition's workaround the paper's edge-based DFG
  formulation avoids ("these blocks must later be removed if no code is
  moved into them" -- we count the useless ones);
* candidate placement points are every edge with ANT and PAV -- the dense
  equivalent of the paper's merge + multiedge rules.

The back half (safe-insertion filtering and the rewrite) is shared with
the DFG algorithm via :func:`repro.core.epr.place_and_transform`, so the
two implementations differ exactly in how placement information is
computed -- which is what the F5 benchmark compares.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.cfg.normalize import split_critical_edges
from repro.core.epr import EPRResult, candidate_expressions, place_and_transform
from repro.dataflow.bitsets import (
    anticipatable_bitsets,
    available_bitsets,
    expression_space,
)
from repro.lang.ast_nodes import Expr, expr_vars, is_trivial
from repro.perf.csr import build_csr
from repro.util.counters import WorkCounter


def cfg_eliminate_partial_redundancies(
    graph: CFG,
    expr: Expr,
    counter: WorkCounter | None = None,
) -> EPRResult:
    """Morel-Renvoise-style EPR for one expression.

    Works on a critical-edge-split copy of ``graph``; the returned
    result's graph has unused split blocks removed again.
    """
    counter = counter if counter is not None else WorkCounter()
    if is_trivial(expr) or not expr_vars(expr):
        raise ValueError("EPR applies to compound expressions over variables")

    split = graph.copy()
    inserted_nops = split_critical_edges(split)
    counter.tick("critical_edges_split", len(inserted_nops))

    # One CSR snapshot and one compiled expression universe feed all
    # four dense solves (AV/PAV/ANT/PAN differ only in direction, meet
    # and initial value).
    csr = build_csr(split)
    space = expression_space(split, csr)
    ant = anticipatable_bitsets(split, counter, csr=csr, space=space)
    pan = anticipatable_bitsets(split, counter, csr=csr, space=space, must=False)
    av = available_bitsets(split, counter, csr=csr, space=space)
    pav = available_bitsets(split, counter, csr=csr, space=space, must=False)
    del pan  # dense PAN is computed (and costed) but PP below uses PAV

    pp_edges: set[int] = set()
    for eid in split.edges:
        counter.tick("pp_edge_checks")
        if expr in ant[eid] and expr in pav[eid]:
            pp_edges.add(eid)
            # Push placement up through the join: a point that is ANT+PAV
            # just below a merge is served by computing on the merge's
            # in-edges that lack the value (the PPIN/PPOUT recursion of
            # Morel-Renvoise, one level per candidate edge; the shared
            # redundancy/justification filter keeps only useful points).
            src = split.node(split.edge(eid).src)
            if src.kind is NodeKind.MERGE:
                for in_edge in split.in_edges(src.id):
                    pp_edges.add(in_edge.id)

    result = place_and_transform(split, expr, pp_edges, av, counter)
    removed = _remove_unused_nops(result.graph)
    counter.tick("useless_split_blocks_removed", removed)
    return result


def _remove_unused_nops(graph: CFG) -> int:
    """Remove NOP blocks no code moved into (the node-based tradition's
    cleanup step)."""
    removed = 0
    for node in list(graph.nodes.values()):
        if node.kind is not NodeKind.NOP:
            continue
        preds = graph.in_edges(node.id)
        succs = graph.out_edges(node.id)
        if len(preds) == 1 and len(succs) == 1:
            graph.add_edge(preds[0].src, succs[0].dst, label=preds[0].label)
            graph.remove_node(node.id)
            removed += 1
    graph.validate(normalized=True)
    return removed


def cfg_epr_all(graph: CFG, counter: WorkCounter | None = None):
    """Apply dense EPR to every candidate expression (baseline driver)."""
    counter = counter if counter is not None else WorkCounter()
    current = graph
    results: list[EPRResult] = []
    for expr in candidate_expressions(graph):
        if expr not in current.expressions():
            continue
        outcome = cfg_eliminate_partial_redundancies(
            current, expr, counter=counter
        )
        if outcome.changed:
            results.append(outcome)
            current = outcome.graph
    return current, results
