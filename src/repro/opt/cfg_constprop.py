"""Vector constant propagation on the CFG (Section 4.1, Figure 4(a)).

"At each edge, we maintain a vector of lattice values having an entry for
each variable."  The vector at ``start`` is all-TOP (entry values
unknown); every other edge starts all-BOTTOM.  An all-BOTTOM input vector
means the point is unreached, and stays unreached through any transfer --
that rule (plus switch arms receiving all-BOTTOM when the predicate rules
them out) is what finds *possible-paths* constants.

This algorithm is deliberately the dense baseline: each node visit does
O(V) lattice work (copying/joining whole vectors), so the fixpoint costs
O(EV^2) against the DFG algorithm's O(EV) -- the separation measured by
experiment F4.  Precision is identical; the test suite checks value-level
agreement with the DFG algorithm and SCCP on every program it generates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.lattice import (
    BOTTOM,
    TOP,
    ConstValue,
    branch_implications,
    eval_abstract,
    join_const,
    truthiness,
)
from repro.dataflow.solver import solve_dataflow
from repro.util.counters import WorkCounter

Vector = tuple  # tuple[ConstValue, ...] indexed by variable position


@dataclass
class CFGConstants:
    """Result in the same shape as the DFG/def-use/SCCP results."""

    variables: list[str]
    edge_vectors: dict[int, Vector]
    use_values: dict[tuple[int, str], ConstValue] = field(default_factory=dict)
    rhs_values: dict[int, ConstValue] = field(default_factory=dict)
    dead_nodes: set[int] = field(default_factory=set)

    def constant_uses(self) -> dict[tuple[int, str], int]:
        return {
            k: v for k, v in self.use_values.items() if isinstance(v, int)
        }

    def constant_rhs(self) -> dict[int, int]:
        return {k: v for k, v in self.rhs_values.items() if isinstance(v, int)}


class _VectorProblem:
    direction = "forward"

    def __init__(
        self,
        variables: list[str],
        counter: WorkCounter,
        refine_predicates: bool = False,
    ) -> None:
        self.variables = variables
        self.position = {v: i for i, v in enumerate(variables)}
        self.bottom = tuple(BOTTOM for _ in variables)
        self.top = tuple(TOP for _ in variables)
        self.counter = counter
        self.refine_predicates = refine_predicates

    def refine(self, predicate, edge, incoming: Vector) -> Vector:
        """Section 4's Multiflow extension on the vector algorithm: an
        equality predicate pins its variable's entry on the implied arm."""
        if not self.refine_predicates:
            return incoming
        implied = branch_implications(predicate, taken=edge.label == "T")
        if not implied:
            return incoming
        out = list(incoming)
        for var, value in implied.items():
            out[self.position[var]] = value
        return tuple(out)

    def initial(self, graph: CFG, eid: int) -> Vector:
        return self.bottom

    def lookup(self, vector: Vector):
        return lambda name: vector[self.position[name]]

    def transfer(self, graph: CFG, nid: int, facts_in):
        node = graph.node(nid)
        # The hallmark of the dense algorithm: O(V) work per node visit.
        self.counter.tick("vector_entries", len(self.variables))
        if node.kind is NodeKind.START:
            return {e.id: self.top for e in graph.out_edges(nid)}
        if node.kind is NodeKind.MERGE:
            combined = list(self.bottom)
            for vector in facts_in.values():
                for i, value in enumerate(vector):
                    combined[i] = join_const(combined[i], value)
            out = tuple(combined)
            return {e.id: out for e in graph.out_edges(nid)}
        incoming = next(iter(facts_in.values()))
        if incoming == self.bottom:
            # Unreached: stay unreached (the possible-paths rule).
            return {e.id: self.bottom for e in graph.out_edges(nid)}
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None and node.expr is not None
            value = eval_abstract(node.expr, self.lookup(incoming))
            out = list(incoming)
            out[self.position[node.target]] = value
            out_vec = tuple(out)
            return {e.id: out_vec for e in graph.out_edges(nid)}
        if node.kind is NodeKind.SWITCH:
            assert node.expr is not None
            predicate = truthiness(
                eval_abstract(node.expr, self.lookup(incoming))
            )
            result = {}
            for edge in graph.out_edges(nid):
                if predicate is TOP:
                    result[edge.id] = self.refine(node.expr, edge, incoming)
                elif predicate is BOTTOM:
                    result[edge.id] = self.bottom
                else:
                    taken = "T" if predicate else "F"
                    result[edge.id] = (
                        self.refine(node.expr, edge, incoming)
                        if edge.label == taken
                        else self.bottom
                    )
            return result
        # PRINT / NOP pass the vector through.
        return {e.id: incoming for e in graph.out_edges(nid)}


def cfg_constant_propagation(
    graph: CFG,
    counter: WorkCounter | None = None,
    refine_predicates: bool = False,
) -> CFGConstants:
    """Solve the Figure 4(a) equations; returns per-edge vectors plus the
    use/rhs views shared with the other three algorithms.

    ``refine_predicates`` enables the Section 4 Multiflow extension (see
    :func:`repro.dataflow.lattice.branch_implications`).
    """
    counter = counter if counter is not None else WorkCounter()
    variables = sorted(graph.variables())
    problem = _VectorProblem(variables, counter, refine_predicates)
    vectors = solve_dataflow(graph, problem, counter)

    result = CFGConstants(variables, vectors)
    for node in graph.nodes.values():
        if node.kind in (NodeKind.START, NodeKind.END, NodeKind.MERGE, NodeKind.NOP):
            continue
        in_vector = vectors[graph.in_edge(node.id).id]
        unreached = in_vector == problem.bottom
        if unreached:
            result.dead_nodes.add(node.id)
        for var in node.uses():
            result.use_values[(node.id, var)] = in_vector[
                problem.position[var]
            ]
        if node.expr is not None:
            result.rhs_values[node.id] = (
                BOTTOM
                if unreached
                else eval_abstract(node.expr, problem.lookup(in_vector))
            )
    return result
