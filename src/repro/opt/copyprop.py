"""Copy propagation through the dependence flow graph.

The paper's Section 1 "analysis in stages" example needs it: after PRE
rewrites ``z := a+b; w := a+b`` into reads of one temporary, the second
level of redundancy (``x := z+1`` vs ``y := w+1``) only becomes visible
once the copies are propagated and both right-hand sides are literally
the same expression again.

The DFG makes the correctness condition a one-line query: replacing a
use of ``x`` (where ``x``'s dependence source is the copy ``x := y``)
with ``y`` is sound iff **y has the same dependence source at the use as
it had at the copy** -- no interception, no redefinition, on any path in
between.  This uses the resolver's demand-driven ``source`` queries; no
per-variable dataflow needs to be re-run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.graph import CFG
from repro.core.build import build_dfg
from repro.core.dfg import PortKind
from repro.lang.ast_nodes import (
    BinOp,
    Expr,
    Index,
    IntLit,
    UnOp,
    Update,
    Var,
)
from repro.util.counters import WorkCounter


@dataclass
class CopyPropStats:
    """What one copy-propagation pass changed."""

    rewritten_uses: int = 0
    rounds: int = 0


def _substitute_var(expr: Expr, old: str, new: str) -> Expr:
    if isinstance(expr, Var):
        return Var(new) if expr.name == old else expr
    if isinstance(expr, IntLit):
        return expr
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _substitute_var(expr.operand, old, new))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _substitute_var(expr.left, old, new),
            _substitute_var(expr.right, old, new),
        )
    if isinstance(expr, Index):
        return Index(
            new if expr.array == old else expr.array,
            _substitute_var(expr.index, old, new),
        )
    if isinstance(expr, Update):
        return Update(
            new if expr.array == old else expr.array,
            _substitute_var(expr.index, old, new),
            _substitute_var(expr.value, old, new),
        )
    raise TypeError(f"not an expression: {expr!r}")


def copy_propagation(
    graph: CFG,
    counter: WorkCounter | None = None,
    max_rounds: int = 10,
    manager=None,
) -> CopyPropStats:
    """Propagate copies in place; returns statistics.

    Each round rebuilds the DFG of the current graph (copy chains expose
    new opportunities), rewrites every justified use, and stops when a
    round changes nothing.  With an
    :class:`~repro.pipeline.manager.AnalysisManager`, the DFG comes from
    the pass cache: rewrites invalidate it between rounds automatically,
    and the final (no-change) round's DFG stays warm for whatever runs
    next.
    """
    counter = counter if counter is not None else WorkCounter()
    stats = CopyPropStats()
    for _ in range(max_rounds):
        stats.rounds += 1
        if manager is not None and manager.graph is graph:
            dfg = manager.get("dfg")
        else:
            dfg = build_dfg(graph, counter=counter)
        resolver = dfg.resolver

        def elide(port):
            """Switch operators split control regions but carry the value
            through unchanged; chase to the underlying producer."""
            while port.kind is PortKind.SWITCH:
                port = dfg.switch_input(port)
            return port

        changed = 0
        for (nid, var), raw_source in list(dfg.use_sources.items()):
            source = elide(raw_source)
            if source.kind is not PortKind.DEF:
                continue
            copy_node = graph.node(source.node)
            assert copy_node.expr is not None
            if not isinstance(copy_node.expr, Var):
                continue
            original = copy_node.expr.name
            if original == var:
                continue  # x := x, nothing to do
            counter.tick("copyprop_candidates")
            # Resolve both structurally (resolution depends only on graph
            # shape and assignment targets, so in-round expression
            # rewrites cannot invalidate it).  Switch operators are
            # elided on both sides: they gate control, not values.
            at_copy = elide(resolver.source_at_node(source.node, original))
            at_use = elide(resolver.source_at_node(nid, original))
            if at_copy != at_use:
                continue  # the original may have changed in between
            node = graph.node(nid)
            assert node.expr is not None
            node.expr = _substitute_var(node.expr, var, original)
            graph.note_rewrite()
            changed += 1
        stats.rewritten_uses += changed
        if not changed:
            break
    graph.validate(normalized=True)
    return stats
