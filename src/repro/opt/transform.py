"""Graph transformations driven by analysis results: constant folding,
branch folding, and dead code elimination.

Section 4's algorithm is "constant propagation *with dead code
elimination*": once a switch predicate is a known constant the untaken
arm is unreachable, and once a use is a known constant the expression
folds.  These transforms consume any of the four constant-propagation
results (all expose ``rhs_values``) and are iterated to a fixpoint by
:func:`fold_and_eliminate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cfg.graph import CFG, NodeKind
from repro.cfg.normalize import normalize
from repro.dataflow.liveness import live_variables
from repro.lang.ast_nodes import IntLit


@dataclass
class TransformStats:
    """What a fold/DCE run changed."""

    folded_rhs: int = 0
    folded_branches: int = 0
    removed_assignments: int = 0
    removed_nodes: int = 0
    rounds: int = 0

    def merge(self, other: "TransformStats") -> None:
        self.folded_rhs += other.folded_rhs
        self.folded_branches += other.folded_branches
        self.removed_assignments += other.removed_assignments
        self.removed_nodes += other.removed_nodes
        self.rounds += other.rounds


def _is_synthetic_exit(graph: CFG, node) -> bool:
    """True for the ``switch(1)`` escape hatches that normalization adds
    so infinite loops still reach END: predicate literally ``1`` and an
    F-arm that falls into END, possibly through interposed merges."""
    if node.expr != IntLit(1):
        return False
    edge = next(
        (e for e in graph.out_edges(node.id) if e.label == "F"), None
    )
    if edge is None:
        return False
    dst, seen = edge.dst, set()
    while dst != graph.end:
        if dst in seen or graph.nodes[dst].kind is not NodeKind.MERGE:
            return False
        seen.add(dst)
        succs = graph.succs(dst)
        if len(succs) != 1:
            return False
        dst = succs[0]
    return True


def fold_constants(graph: CFG, rhs_values: dict[int, object]) -> TransformStats:
    """Fold constant right-hand sides and constant branch predicates, in
    place.  ``rhs_values`` maps node ids to lattice values (integers fold;
    TOP/BOTTOM do not).  Unreachable code exposed by branch folding is
    pruned by re-normalization."""
    stats = TransformStats()
    for node in list(graph.nodes.values()):
        if node.id not in graph.nodes:
            continue  # removed by an earlier branch fold
        value = rhs_values.get(node.id)
        if not isinstance(value, int):
            continue
        if node.kind in (NodeKind.ASSIGN, NodeKind.PRINT):
            if node.expr != IntLit(value):
                node.expr = IntLit(value)
                graph.note_rewrite()
                stats.folded_rhs += 1
        elif node.kind is NodeKind.SWITCH:
            if value and _is_synthetic_exit(graph, node):
                # A synthetic exit (normalize adds switch(1) -> END so
                # infinite loops still reach END).  Folding it strands
                # the loop it guards and re-normalization inserts an
                # identical switch under a fresh id -- a fold treadmill
                # that never reaches a fixpoint.  Keep it.
                continue
            taken = graph.switch_edge(node.id, "T" if value else "F")
            in_edge = graph.in_edge(node.id)
            graph.add_edge(in_edge.src, taken.dst, label=in_edge.label)
            before = graph.num_nodes
            graph.remove_node(node.id)
            normalize(graph)  # prune the untaken arm, splice thin merges
            stats.folded_branches += 1
            stats.removed_nodes += before - graph.num_nodes
    return stats


def remove_dead_assignments(
    graph: CFG, live_out: frozenset[str] = frozenset()
) -> TransformStats:
    """Remove assignments whose target is dead on their out-edge, in
    place.  PRINT nodes are the language's observations and never die."""
    stats = TransformStats()
    live = live_variables(graph, live_out)
    for node in list(graph.nodes.values()):
        if node.kind is not NodeKind.ASSIGN:
            continue
        out = graph.out_edge(node.id)
        assert node.target is not None
        if out.id not in live:
            # An edge created by an earlier removal in this pass; its
            # liveness is unknown here -- the fold/DCE driver loops, so
            # the next round sees it with fresh facts.
            continue
        if node.target in live[out.id]:
            continue
        in_edge = graph.in_edge(node.id)
        graph.add_edge(in_edge.src, out.dst, label=in_edge.label)
        graph.remove_node(node.id)
        stats.removed_assignments += 1
    graph.validate(normalized=True)
    return stats


def fold_and_eliminate(
    graph: CFG,
    analyze: Callable[[CFG], dict[int, object]],
    live_out: frozenset[str] = frozenset(),
    max_rounds: int = 20,
) -> TransformStats:
    """Iterate constant folding, branch folding and DCE to a fixpoint.

    ``analyze`` produces fresh ``rhs_values`` for the current graph on
    each round (e.g. ``lambda g: dfg_constant_propagation(g).rhs_values``);
    folding a branch can expose new constants and new dead code, so the
    loop continues while anything changes.
    """
    total = TransformStats()
    for _ in range(max_rounds):
        stats = TransformStats()
        stats.merge(fold_constants(graph, analyze(graph)))
        stats.merge(remove_dead_assignments(graph, live_out))
        total.merge(stats)
        total.rounds += 1
        if (
            stats.folded_rhs == 0
            and stats.folded_branches == 0
            and stats.removed_assignments == 0
        ):
            break
    graph.validate(normalized=True)
    return total
