"""The end-to-end optimizer: the paper's analyses as a working compiler
middle-end.

``optimize`` runs, on a copy of the input graph:

1. **constant propagation + dead code elimination** (Section 4) using the
   DFG algorithm (or any of the baselines, selectable), iterated with
   folding until nothing changes;
2. **partial redundancy elimination** (Section 5) for every candidate
   expression, DFG-based by default;
3. a final fold/DCE round to clean up temporaries made constant.

Every analysis request goes through an
:class:`~repro.pipeline.manager.AnalysisManager`: the supporting
structures (SESE regions, cycle equivalence, the DFG) are computed once
per graph state and shared across passes, and each transform's mutation
-- folding, branch removal, copy propagation, EPR splicing -- invalidates
exactly the downstream results (shape changes drop everything;
expression rewrites keep the control structure warm).  The manager's
metrics record per-pass work, time, and cache traffic; ``repro trace``
exposes them.

Every pass preserves observable behaviour; the test suite verifies runs
on the original and optimized graphs agree on outputs, and that no
execution evaluates any original expression more often afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFG
from repro.core.epr import epr_all
from repro.lang.ast_nodes import Program
from repro.opt.cfg_epr import cfg_epr_all
from repro.opt.transform import TransformStats, fold_and_eliminate
from repro.pipeline.manager import AnalysisManager
from repro.util.counters import WorkCounter

#: Selectable constant-propagation engines; each pulls its result
#: through the analysis manager so repeated queries on an unchanged
#: graph are cache hits.
CONSTPROP_ENGINES: dict[str, Callable] = {
    "dfg": lambda m: m.get("constprop").rhs_values,
    "cfg": lambda m: m.get("constprop-cfg").rhs_values,
    "defuse": lambda m: m.get("constprop-defuse").rhs_values,
}

#: Selectable redundancy-elimination engines.
EPR_ENGINES: dict[str, Callable] = {
    "dfg": epr_all,
    "cfg": cfg_epr_all,
}


@dataclass
class OptimizationReport:
    """What the pipeline did."""

    constprop: TransformStats = field(default_factory=TransformStats)
    pre_expressions: list = field(default_factory=list)
    copies_propagated: int = 0
    stages_run: int = 0
    cleanup: TransformStats = field(default_factory=TransformStats)
    adce_removed: int = 0
    counter: WorkCounter = field(default_factory=WorkCounter)


def optimize(
    source: Union[Program, CFG],
    constprop: str = "dfg",
    epr: str = "dfg",
    run_epr: bool = True,
    live_out: frozenset[str] = frozenset(),
    stages: int = 3,
    run_adce: bool = True,
    manager: AnalysisManager | None = None,
) -> tuple[CFG, OptimizationReport]:
    """Optimize a program or CFG; returns (new graph, report).

    Each *stage* runs fold/DCE, then PRE over every candidate expression,
    then DFG-based copy propagation.  Staging realizes the Section 1
    observation that redundancy elimination performed in dependence order
    exposes second-level redundancies: PRE introduces temporaries, copy
    propagation turns reads of those temporaries back into syntactically
    equal expressions, and the next stage's PRE eliminates them.  Stages
    stop early once a full stage changes nothing.

    ``manager`` lets a caller share one analysis cache (and its metrics)
    with the optimizer; it is rebound to the working copy, so the
    caller's cached results for the *original* graph are dropped.  When
    omitted, a private manager is created and exposed on
    ``report.counter`` via its shared work counter.
    """
    if constprop not in CONSTPROP_ENGINES:
        raise ValueError(f"unknown constprop engine {constprop!r}")
    if epr not in EPR_ENGINES:
        raise ValueError(f"unknown EPR engine {epr!r}")
    graph = (
        build_cfg(source) if isinstance(source, Program) else source.copy()
    )
    if manager is None:
        manager = AnalysisManager(graph)
    else:
        manager.rebind(graph)
    report = OptimizationReport(counter=manager.metrics.counter)
    engine = CONSTPROP_ENGINES[constprop]

    def analyze(_graph: CFG) -> dict:
        # fold_and_eliminate mutates the graph between rounds; the
        # manager notices via the graph's version counters and
        # recomputes only what the mutation kind invalidated.
        return engine(manager)

    with manager.metrics.span("opt:fold"):
        report.constprop = fold_and_eliminate(graph, analyze, live_out)
    if run_epr:
        from repro.opt.copyprop import copy_propagation

        for _stage in range(stages):
            report.stages_run += 1
            with manager.metrics.span("opt:epr"):
                if epr == "dfg":
                    graph, results = epr_all(
                        graph, counter=report.counter, manager=manager
                    )
                else:
                    graph, results = EPR_ENGINES[epr](
                        graph, counter=report.counter
                    )
            if manager.graph is not graph:
                manager.rebind(graph)
            report.pre_expressions.extend(r.expr for r in results)
            with manager.metrics.span("opt:copyprop"):
                copies = copy_propagation(
                    graph, counter=report.counter, manager=manager
                )
            report.copies_propagated += copies.rewritten_uses
            with manager.metrics.span("opt:fold"):
                cleanup = fold_and_eliminate(graph, analyze, live_out)
            report.cleanup.merge(cleanup)
            stage_changed = (
                bool(results)
                or copies.rewritten_uses > 0
                or cleanup.folded_rhs
                or cleanup.folded_branches
                or cleanup.removed_assignments
            )
            if not stage_changed:
                break
    if run_adce and not live_out:
        # Final sweep: dependence-based mark-sweep removes cyclic dead
        # chains (e.g. loop counters feeding only themselves) that
        # liveness-based DCE keeps.  Skipped when live_out names
        # variables observable after end: ADCE's roots are prints and
        # predicates only.
        from repro.core.dce import dfg_dead_code_elimination

        with manager.metrics.span("opt:adce"):
            manager.refresh()
            adce = dfg_dead_code_elimination(
                graph,
                dfg=manager.get("dfg") if manager.graph is graph else None,
                counter=report.counter,
            )
        report.adce_removed = len(adce.removed_assignments)
    graph.validate(normalized=True)
    return graph, report
