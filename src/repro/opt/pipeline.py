"""The end-to-end optimizer: the paper's analyses as a working compiler
middle-end.

``optimize`` runs, on a copy of the input graph:

1. **constant propagation + dead code elimination** (Section 4) using the
   DFG algorithm (or any of the baselines, selectable), iterated with
   folding until nothing changes;
2. **partial redundancy elimination** (Section 5) for every candidate
   expression, DFG-based by default;
3. a final fold/DCE round to clean up temporaries made constant.

Every pass preserves observable behaviour; the test suite verifies runs
on the original and optimized graphs agree on outputs, and that no
execution evaluates any original expression more often afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFG
from repro.core.constprop import dfg_constant_propagation
from repro.core.epr import epr_all
from repro.defuse.constprop import defuse_constant_propagation
from repro.lang.ast_nodes import Program
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.opt.cfg_epr import cfg_epr_all
from repro.opt.transform import TransformStats, fold_and_eliminate
from repro.util.counters import WorkCounter

#: Selectable constant-propagation engines.
CONSTPROP_ENGINES: dict[str, Callable] = {
    "dfg": lambda g: dfg_constant_propagation(g).rhs_values,
    "cfg": lambda g: cfg_constant_propagation(g).rhs_values,
    "defuse": lambda g: defuse_constant_propagation(g).rhs_values,
}

#: Selectable redundancy-elimination engines.
EPR_ENGINES: dict[str, Callable] = {
    "dfg": epr_all,
    "cfg": cfg_epr_all,
}


@dataclass
class OptimizationReport:
    """What the pipeline did."""

    constprop: TransformStats = field(default_factory=TransformStats)
    pre_expressions: list = field(default_factory=list)
    copies_propagated: int = 0
    stages_run: int = 0
    cleanup: TransformStats = field(default_factory=TransformStats)
    adce_removed: int = 0
    counter: WorkCounter = field(default_factory=WorkCounter)


def optimize(
    source: Union[Program, CFG],
    constprop: str = "dfg",
    epr: str = "dfg",
    run_epr: bool = True,
    live_out: frozenset[str] = frozenset(),
    stages: int = 3,
    run_adce: bool = True,
) -> tuple[CFG, OptimizationReport]:
    """Optimize a program or CFG; returns (new graph, report).

    Each *stage* runs fold/DCE, then PRE over every candidate expression,
    then DFG-based copy propagation.  Staging realizes the Section 1
    observation that redundancy elimination performed in dependence order
    exposes second-level redundancies: PRE introduces temporaries, copy
    propagation turns reads of those temporaries back into syntactically
    equal expressions, and the next stage's PRE eliminates them.  Stages
    stop early once a full stage changes nothing.
    """
    if constprop not in CONSTPROP_ENGINES:
        raise ValueError(f"unknown constprop engine {constprop!r}")
    if epr not in EPR_ENGINES:
        raise ValueError(f"unknown EPR engine {epr!r}")
    graph = (
        build_cfg(source) if isinstance(source, Program) else source.copy()
    )
    report = OptimizationReport()

    report.constprop = fold_and_eliminate(
        graph, CONSTPROP_ENGINES[constprop], live_out
    )
    if run_epr:
        from repro.opt.copyprop import copy_propagation

        for _stage in range(stages):
            report.stages_run += 1
            graph, results = EPR_ENGINES[epr](graph, counter=report.counter)
            report.pre_expressions.extend(r.expr for r in results)
            copies = copy_propagation(graph, counter=report.counter)
            report.copies_propagated += copies.rewritten_uses
            cleanup = fold_and_eliminate(
                graph, CONSTPROP_ENGINES[constprop], live_out
            )
            report.cleanup.merge(cleanup)
            stage_changed = (
                bool(results)
                or copies.rewritten_uses > 0
                or cleanup.folded_rhs
                or cleanup.folded_branches
                or cleanup.removed_assignments
            )
            if not stage_changed:
                break
    if run_adce and not live_out:
        # Final sweep: dependence-based mark-sweep removes cyclic dead
        # chains (e.g. loop counters feeding only themselves) that
        # liveness-based DCE keeps.  Skipped when live_out names
        # variables observable after end: ADCE's roots are prints and
        # predicates only.
        from repro.core.dce import dfg_dead_code_elimination

        adce = dfg_dead_code_elimination(graph, counter=report.counter)
        report.adce_removed = len(adce.removed_assignments)
    graph.validate(normalized=True)
    return graph, report
