"""CFG-based baselines and the optimization driver.

* :mod:`repro.opt.cfg_constprop` -- Kildall-style vector constant
  propagation, the Figure 4(a) algorithm the DFG version is measured
  against (same precision, O(EV^2) work);
* :mod:`repro.opt.cfg_epr` -- dense CFG partial redundancy elimination in
  the Morel-Renvoise style (critical-edge splitting, edge-wise dense
  candidate points);
* :mod:`repro.opt.transform` -- constant folding, branch folding and dead
  code elimination, applied from any of the constant-propagation results;
* :mod:`repro.opt.pipeline` -- an end-to-end optimizer combining the
  passes, with interpreter-verified semantics in the test suite.
"""

from repro.opt.cfg_constprop import CFGConstants, cfg_constant_propagation
from repro.opt.cfg_epr import cfg_eliminate_partial_redundancies, cfg_epr_all
from repro.opt.copyprop import CopyPropStats, copy_propagation
from repro.opt.pipeline import OptimizationReport, optimize
from repro.opt.transform import (
    fold_and_eliminate,
    fold_constants,
    remove_dead_assignments,
)

__all__ = [
    "CFGConstants",
    "CopyPropStats",
    "OptimizationReport",
    "cfg_constant_propagation",
    "cfg_eliminate_partial_redundancies",
    "cfg_epr_all",
    "copy_propagation",
    "fold_and_eliminate",
    "fold_constants",
    "optimize",
    "remove_dead_assignments",
]
