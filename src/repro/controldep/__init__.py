"""Control dependence, cycle equivalence and SESE regions.

This package implements Section 3.1 of the paper:

* :mod:`repro.controldep.cycle_equiv` -- the O(E) bracket-list algorithm
  for cycle equivalence of control-flow edges (the paper sketches it;
  the companion PLDI'94 "Program Structure Tree" paper by the same
  authors gives the details we implement).
* :mod:`repro.controldep.sese` -- canonical single-entry single-exit
  regions from ordered cycle-equivalence classes (Theorem 1), assembled
  into a program structure tree.
* :mod:`repro.controldep.cdg` -- the *standard* control dependence
  computation via postdominance frontiers (Ferrante-Ottenstein-Warren),
  used as the baseline and as an independent oracle for Claim 1 ("same
  control dependence iff cycle equivalent in the augmented graph").
* :mod:`repro.controldep.factored` -- the factored control dependence
  graph built from cycle-equivalence classes in O(E).
* :mod:`repro.controldep.ntscd` -- *non-termination-sensitive* strong
  control dependence (Chalupa et al., arXiv:2011.01564): maximal paths
  may be infinite, so code after a possibly-diverging loop depends on
  the loop predicate.  The postdominance-based CDG above cannot express
  that; our ``goto`` frontend's irreducible and non-terminating CFGs
  exercise the difference.
"""

from repro.controldep.cdg import control_dependence_edges, control_dependence_nodes
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.controldep.factored import FactoredCDG, build_factored_cdg
from repro.controldep.ntscd import NTSCDResult, ntscd, ntscd_reference
from repro.controldep.sese import ProgramStructure, Region, build_program_structure

__all__ = [
    "FactoredCDG",
    "NTSCDResult",
    "ntscd",
    "ntscd_reference",
    "ProgramStructure",
    "Region",
    "build_factored_cdg",
    "build_program_structure",
    "control_dependence_edges",
    "control_dependence_nodes",
    "cycle_equivalence",
]
