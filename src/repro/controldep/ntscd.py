"""Non-termination-sensitive control dependence (NTSCD).

Chalupa et al., "Fast Computation of Strong Control Dependencies"
(arXiv:2011.01564), following Ranganath et al.'s definition: a node
``n`` is NTSCD-dependent on a branch ``p`` iff some successor of ``p``
lies on *only* maximal paths that reach ``n`` while another successor
has a maximal path avoiding ``n``.  Unlike the classic postdominance
CDG, maximal paths may be infinite: a statement after ``while (p) ...``
*is* NTSCD-dependent on the loop predicate, because looping forever is
a maximal path that avoids it.  Our ``goto`` frontend produces exactly
the irreducible and non-terminating CFGs where this differs from weak
control dependence, which is why the reproduction carries it.

Algorithm (the per-target formulation): for target ``n``, the set
``A(n)`` of nodes *all of whose maximal paths reach* ``n`` is the least
fixpoint of

    ``A = {n} ∪ { m | m has at least one successor, all in A }``

computed backward in O(E) with a counter of not-yet-captured successor
edges per node.  ``p`` with >= 2 out-edges then depends ``n`` on ``p``
iff some successor is in ``A(n)`` and some is not.  Total O(V * E),
fine at corpus scale and independent of any dominance machinery -- so
it doubles as its own oracle: :func:`ntscd_reference` recomputes
``A(n)`` from first principles (a maximal path avoids ``n`` iff it can
stay in ``G - n`` forever or end at a sink of ``G - n``).

This is a *shape-only* analysis (``uses_exprs=False``): it reads nodes
and edges, never an expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG
from repro.util.counters import WorkCounter


@dataclass
class NTSCDResult:
    """``deps[n]`` is the set of branch nodes ``n`` NTSCD-depends on."""

    graph: CFG
    deps: dict[int, frozenset[int]] = field(default_factory=dict)
    all_reach: dict[int, frozenset[int]] = field(default_factory=dict)

    def controls(self, p: int) -> frozenset[int]:
        """The nodes NTSCD-dependent on branch ``p``."""
        return frozenset(
            n for n, ps in self.deps.items() if p in ps
        )

    def facts(self):
        return tuple(sorted((n, tuple(sorted(ps)))
                            for n, ps in self.deps.items() if ps))


def _all_paths_reach(graph: CFG, target: int) -> set[int]:
    """Nodes all of whose maximal paths (including infinite ones) visit
    ``target``: backward least fixpoint with per-node edge counters."""
    remaining = {
        nid: len(graph.out_edges(nid)) for nid in graph.nodes
    }
    captured = {target}
    work = [target]
    while work:
        nid = work.pop()
        for edge in graph.in_edges(nid):
            pred = edge.src
            if pred in captured:
                continue
            remaining[pred] -= 1
            if remaining[pred] == 0:
                captured.add(pred)
                work.append(pred)
    return captured


def ntscd(graph: CFG, counter: WorkCounter | None = None) -> NTSCDResult:
    """Non-termination-sensitive strong control dependence for every
    node of ``graph`` (works on arbitrary, even non-normalized, CFGs)."""
    counter = counter if counter is not None else WorkCounter()
    branches = [
        nid for nid in sorted(graph.nodes)
        if len(graph.out_edges(nid)) >= 2
    ]
    result = NTSCDResult(graph)
    for target in sorted(graph.nodes):
        counter.tick("ntscd_targets")
        reach_all = _all_paths_reach(graph, target)
        counter.tick("ntscd_captured", len(reach_all))
        controllers = set()
        for p in branches:
            succs = [e.dst for e in graph.out_edges(p)]
            inside = sum(1 for s in succs if s in reach_all)
            if 0 < inside < len(succs):
                controllers.add(p)
        result.deps[target] = frozenset(controllers)
        result.all_reach[target] = frozenset(reach_all)
    return result


def _escapes(graph: CFG, forbidden: int) -> set[int]:
    """Nodes with a maximal path avoiding ``forbidden``: those that can
    reach, inside ``G - forbidden``, either a sink of ``G`` or a cycle
    (where an infinite path hides).  Brute-force oracle twin."""
    nodes = [n for n in graph.nodes if n != forbidden]
    node_set = set(nodes)
    succs = {
        n: [e.dst for e in graph.out_edges(n) if e.dst in node_set]
        for n in nodes
    }
    # A node is "self-sustaining" if it can take a step forever inside
    # G - forbidden: greatest fixpoint of "has a successor that is
    # self-sustaining".  Computed by repeatedly deleting nodes with no
    # surviving successor among survivors.
    alive = {n for n in nodes if succs[n]}
    changed = True
    while changed:
        changed = False
        for n in sorted(alive):
            if not any(s in alive for s in succs[n]):
                alive.discard(n)
                changed = True
    # Sinks of G itself (END, or goto dead-ends) end a maximal path.
    sinks = {n for n in nodes if not graph.out_edges(n)}
    seeds = alive | sinks
    escaped = set(seeds)
    work = sorted(seeds)
    while work:
        nid = work.pop()
        for edge in graph.in_edges(nid):
            if edge.src in node_set and edge.src not in escaped:
                escaped.add(edge.src)
                work.append(edge.src)
    return escaped


def ntscd_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> NTSCDResult:
    """Independent first-principles twin of :func:`ntscd` (escape
    analysis in ``G - n`` instead of the edge-counter fixpoint)."""
    counter = counter if counter is not None else WorkCounter()
    branches = [
        nid for nid in sorted(graph.nodes)
        if len(graph.out_edges(nid)) >= 2
    ]
    result = NTSCDResult(graph)
    for target in sorted(graph.nodes):
        counter.tick("ntscd_ref_targets")
        escaped = _escapes(graph, target)
        reach_all = {
            n for n in graph.nodes if n == target or n not in escaped
        }
        controllers = set()
        for p in branches:
            succs = [e.dst for e in graph.out_edges(p)]
            inside = sum(1 for s in succs if s in reach_all)
            if 0 < inside < len(succs):
                controllers.add(p)
        result.deps[target] = frozenset(controllers)
        result.all_reach[target] = frozenset(reach_all)
    return result
