"""Canonical SESE regions and the program structure tree.

Theorem 1 of the paper: edges ``e1``, ``e2`` enclose a single-entry
single-exit region iff ``e1`` dominates ``e2``, ``e2`` postdominates
``e1``, and they are cycle equivalent -- equivalently, iff they have the
same control dependence.  The edges of one cycle-equivalence class are
totally ordered by dominance; *consecutive* pairs bound the canonical
(non-composed) regions, and because canonical regions are pairwise
nested, disjoint or sequentially ordered, they form a tree: the program
structure tree (PST).

The structure computed here drives DFG construction (Section 3.2):

* ``classes``          -- each class's edges in dominance order;
* ``regions``          -- one canonical region per consecutive pair;
* ``region_of_node``   -- the smallest region strictly containing a node;
* ``region_of_edge``   -- likewise for edges (boundary edges belong to the
  *enclosing* region, not the one they bound);
* ``defs_in``          -- variables assigned anywhere inside a region,
  aggregated bottom-up over the PST (step 1 of the construction
  algorithm: "determine the variables defined within each single-entry
  single-exit region ... by an inside-out traversal").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cfg.graph import CFG
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.graphs.dominance import (
    DominatorTree,
    edge_dominators,
    edge_key,
    edge_postdominators,
    node_key,
)
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph


@dataclass
class Region:
    """A canonical SESE region bounded by ``entry`` and ``exit`` edge ids.

    ``class_id``/``index`` locate the entry edge within its ordered
    cycle-equivalence class; consecutive regions of one class are the
    sequential siblings the bypassing step walks over.
    """

    entry: int
    exit: int
    class_id: int
    index: int
    parent: "Region | None" = None
    children: list["Region"] = field(default_factory=list, repr=False)
    depth: int = 0

    def __hash__(self) -> int:
        return hash((self.entry, self.exit))

    def __repr__(self) -> str:
        return f"Region(entry=e{self.entry}, exit=e{self.exit})"


class ProgramStructure:
    """Cycle-equivalence classes, canonical regions, and the PST.

    The three substrates -- edge dominators, edge postdominators, and the
    cycle-equivalence partition -- are computed on demand, but callers
    that already hold them (the analysis pipeline manager caches each as
    its own pass) can inject them and pay only for the region/PST
    assembly.
    """

    def __init__(
        self,
        graph: CFG,
        dom: DominatorTree | None = None,
        pdom: DominatorTree | None = None,
        edge_class: dict[int, int] | None = None,
        counter: WorkCounter | None = None,
        csr: "CSRGraph | None" = None,
    ) -> None:
        counter = counter if counter is not None else WorkCounter()
        self.graph = graph
        if csr is None and (dom is None or pdom is None or edge_class is None):
            # Build the flat-array snapshot once and share it across all
            # substrates computed here.
            from repro.perf.csr import build_csr

            csr = build_csr(graph)
        self._dom: DominatorTree = (
            dom if dom is not None else edge_dominators(graph, csr=csr)
        )
        self._pdom: DominatorTree = (
            pdom if pdom is not None else edge_postdominators(graph, csr=csr)
        )
        self._substrate_version = graph.shape_version
        self.edge_class: dict[int, int] = (
            edge_class
            if edge_class is not None
            else cycle_equivalence(graph, counter, csr=csr)
        )

        grouped: dict[int, list[int]] = defaultdict(list)
        for eid, cls in self.edge_class.items():
            counter.tick("sese_edge_groupings")
            grouped[cls].append(eid)
        #: class id -> edge ids in dominance order (entry-most first).
        self.classes: dict[int, list[int]] = {
            cls: sorted(eids, key=lambda e: self.dom.depth(edge_key(e)))
            for cls, eids in grouped.items()
        }

        self.regions: list[Region] = []
        #: edge id -> the region it opens (entry edge), if any.
        self.opens: dict[int, Region] = {}
        for cls, eids in self.classes.items():
            for index in range(len(eids) - 1):
                counter.tick("sese_regions_built")
                region = Region(eids[index], eids[index + 1], cls, index)
                self.regions.append(region)
                self.opens[eids[index]] = region

        self.region_of_node: dict[int, Region | None] = {
            nid: self._smallest_region(node_key(nid)) for nid in graph.nodes
        }
        self.region_of_edge: dict[int, Region | None] = {
            eid: self._smallest_region(edge_key(eid)) for eid in graph.edges
        }

        # PST: a region's parent is the smallest region strictly
        # containing its entry edge.
        roots: list[Region] = []
        for region in self.regions:
            parent = self.region_of_edge[region.entry]
            region.parent = parent
            if parent is None:
                roots.append(region)
            else:
                parent.children.append(region)
        self.roots = roots
        stack = [(r, 1) for r in roots]
        while stack:
            region, depth = stack.pop()
            region.depth = depth
            stack.extend((c, depth + 1) for c in region.children)

        # Inside-out def aggregation (construction step 1).
        self._direct_defs: dict[Region | None, set[str]] = defaultdict(set)
        for node in graph.assign_nodes():
            region = self.region_of_node[node.id]
            assert node.target is not None
            self._direct_defs[region].add(node.target)
        self._defs_in: dict[Region, frozenset[str]] = {}
        for region in sorted(self.regions, key=lambda r: -r.depth):
            combined = set(self._direct_defs.get(region, ()))
            for child in region.children:
                combined |= self._defs_in[child]
            self._defs_in[region] = frozenset(combined)

        #: Regions whose membership or boundary moved since the last
        #: :meth:`consume_touched` (``None`` entries mean the virtual
        #: root's). A list, not a set: ``Region.__hash__`` follows the
        #: boundary, so hashing is deferred to consume time.  ``None``
        #: as the whole value means "unknown -- treat everything as
        #: touched" (set by :meth:`_rebuild_from_scratch`).
        self._touched: list | None = []

    # -- dominance substrates (lazy under incremental edits) ----------------

    def _refresh_substrates(self) -> None:
        """Recompute edge (post)dominators if the graph's shape moved on
        since they were built.  ``apply_splice``/``apply_unsplice`` keep
        every *region* table exact by hand but deliberately leave the
        dominator trees stale -- most incremental consumers never touch
        them, so the rebuild is paid only by the query methods that do
        (``is_sese``, ``contains_*``)."""
        if self._substrate_version == self.graph.shape_version:
            return
        from repro.perf.csr import build_csr

        csr = build_csr(self.graph)
        self._dom = edge_dominators(self.graph, csr=csr)
        self._pdom = edge_postdominators(self.graph, csr=csr)
        self._substrate_version = self.graph.shape_version

    @property
    def dom(self) -> DominatorTree:
        self._refresh_substrates()
        return self._dom

    @property
    def pdom(self) -> DominatorTree:
        self._refresh_substrates()
        return self._pdom

    # -- incremental edits ---------------------------------------------------

    def apply_splice(
        self,
        eid: int,
        nid: int,
        e1: int,
        e2: int,
        counter: WorkCounter | None = None,
    ) -> Region:
        """Record that edge ``eid`` was split into ``e1 -> nid -> e2``.

        The caller has already mutated the graph (removed ``eid``, added
        the straight-line node ``nid`` and the two edges); this updates
        every region table in O(region) instead of rebuilding the whole
        structure.  Splitting an edge with a pass-through node keeps the
        two halves in ``eid``'s cycle-equivalence class (every cycle
        through one crosses the other) and dominance-consecutive in the
        original class position, so one new canonical region ``(e1, e2)``
        appears and the old neighbours retarget onto the new boundary
        edges.  When ``eid`` lay on a cycle the new region may capture
        more than ``nid``: members of the region ``eid`` *closed* that
        were dominated by ``eid`` (a rotated loop entered mid-cycle)
        now sit between ``e1`` and ``e2``; such members are exactly the
        ones unreachable from the closer's entry once the entry and
        ``e1`` are barred, so a local traversal migrates them.  Returns
        the new region.
        """
        cls = self.edge_class.pop(eid)
        self.edge_class[e1] = cls
        self.edge_class[e2] = cls
        eids = self.classes[cls]
        pos = eids.index(eid)
        eids[pos : pos + 1] = [e1, e2]

        # Region-keyed dict entries must be lifted out before the
        # (entry, exit) hash mutates.
        closer = self.opens.get(eids[pos - 1]) if pos > 0 else None
        if closer is not None:
            self._rekey(closer, exit=e1)
        opener = self.opens.pop(eid, None)
        if opener is not None:
            self._rekey(opener, entry=e2)
            self.opens[e2] = opener

        region = Region(e1, e2, cls, pos)
        self.regions.append(region)
        self.opens[e1] = region
        self._reindex_class(cls)

        parent = self.region_of_edge.pop(eid)
        self.region_of_edge[e1] = parent
        self.region_of_edge[e2] = parent
        self.region_of_node[nid] = region
        region.parent = parent
        if parent is None:
            self.roots.append(region)
            region.depth = 1
        else:
            parent.children.append(region)
            region.depth = parent.depth + 1

        if closer is not None:
            entry_dst = self.graph.edge(closer.entry).dst
            seen_nodes, seen_edges = self._forward_reach(
                entry_dst, {closer.entry, e1}
            )
            moved_nodes = [
                n for n, r in self.region_of_node.items()
                if r is closer and n not in seen_nodes
            ]
            moved_edges = [
                e for e, r in self.region_of_edge.items()
                if r is closer and e not in seen_edges
            ]
            for n in moved_nodes:
                self.region_of_node[n] = region
            for e in moved_edges:
                self.region_of_edge[e] = region
            moved_edge_set = set(moved_edges)
            moved_children = [
                c for c in closer.children if c.entry in moved_edge_set
            ]
            for child in moved_children:
                closer.children.remove(child)
                child.parent = region
                region.children.append(child)
            if moved_nodes or moved_children:
                for n in moved_nodes:
                    self._direct_defs[region] |= self.graph.node(n).defs()
                kept = set()
                for n, r in self.region_of_node.items():
                    if r is closer:
                        kept |= self.graph.node(n).defs()
                self._direct_defs[closer] = kept
                self._recompute_defs(closer)
        elif self._on_cycle(e2, e1):
            # No closer region to migrate from, yet the split edge sits
            # on a cycle: nodes dominated *and* postdominated by the old
            # edge could live arbitrarily far up the tree.  Rare (only
            # multi-entry cycles reached here in practice) -- rebuild.
            self._rebuild_from_scratch(counter)
            return self.opens[e1]

        node = self.graph.node(nid)
        self._direct_defs[region] |= node.defs()
        self._recompute_defs(region)
        self._recompute_defs_spine(region.parent)
        if self._touched is not None:
            self._touched.append(parent)
            self._touched.append(region)
            if closer is not None:
                self._touched.append(closer)
            if opener is not None:
                self._touched.append(opener)
            self._touched.append(
                self.region_of_node[self.graph.edge(e1).src]
            )
            self._touched.append(
                self.region_of_node[self.graph.edge(e2).dst]
            )
        if counter is not None:
            counter.tick("sese_incremental_splices")
        return region

    def apply_unsplice(
        self,
        nid: int,
        e1: int,
        e2: int,
        merged: int,
        counter: WorkCounter | None = None,
    ) -> None:
        """Record that pass-through node ``nid`` (occupant of the region
        ``(e1, e2)``) was dissolved and its boundary edges merged into
        ``merged`` -- the exact inverse of :meth:`apply_splice`.  Any
        other members the region held (captured by a splice on a cycle)
        migrate back into the region closed by ``e1`` -- or trigger a
        rebuild when no such region exists."""
        region = self.opens.pop(e1)
        assert region.exit == e2, f"{region!r} does not close at e{e2}"
        cls = self.edge_class.pop(e1)
        self.edge_class.pop(e2)
        self.edge_class[merged] = cls
        eids = self.classes[cls]
        pos = eids.index(e1)
        eids[pos : pos + 2] = [merged]

        closer = self.opens.get(eids[pos - 1]) if pos > 0 else None
        if closer is not None:
            self._rekey(closer, exit=merged)
        opener = self.opens.pop(e2, None)
        if opener is not None:
            self._rekey(opener, entry=merged)
            self.opens[merged] = opener
        self._reindex_class(cls)

        self.regions.remove(region)
        parent = region.parent
        if parent is None:
            self.roots.remove(region)
        else:
            parent.children.remove(region)
        self.region_of_edge.pop(e1)
        self.region_of_edge.pop(e2)
        self.region_of_edge[merged] = parent
        self.region_of_node.pop(nid)
        self._direct_defs.pop(region, None)
        self._defs_in.pop(region)

        leftover_nodes = [
            n for n, r in self.region_of_node.items() if r is region
        ]
        leftover_edges = [
            e for e, r in self.region_of_edge.items() if r is region
        ]
        if leftover_nodes or leftover_edges or region.children:
            if closer is None:
                self._rebuild_from_scratch(counter)
                return
            for n in leftover_nodes:
                self.region_of_node[n] = closer
            for e in leftover_edges:
                self.region_of_edge[e] = closer
            for child in region.children:
                child.parent = closer
                closer.children.append(child)
            for n in leftover_nodes:
                self._direct_defs[closer] |= self.graph.node(n).defs()
            self._recompute_defs(closer)

        # A variable the dissolved node defined may no longer be defined
        # anywhere under an ancestor; recompute each spine level from its
        # direct defs and children, stopping at the first unchanged one.
        self._recompute_defs_spine(parent)
        if self._touched is not None:
            self._touched.append(parent)
            if closer is not None:
                self._touched.append(closer)
            if opener is not None:
                self._touched.append(opener)
            merged_edge = self.graph.edge(merged)
            self._touched.append(self.region_of_node[merged_edge.src])
            self._touched.append(self.region_of_node[merged_edge.dst])
        if counter is not None:
            counter.tick("sese_incremental_unsplices")

    # -- incremental helpers -------------------------------------------------

    def _level_defs(self, region: Region) -> frozenset[str]:
        combined = set(self._direct_defs.get(region, ()))
        for child in region.children:
            combined |= self._defs_in[child]
        return frozenset(combined)

    def _recompute_defs(self, region: Region) -> None:
        self._defs_in[region] = self._level_defs(region)

    def _recompute_defs_spine(self, region: Region | None) -> None:
        walk = region
        while walk is not None:
            fresh = self._level_defs(walk)
            if fresh == self._defs_in[walk]:
                break
            self._defs_in[walk] = fresh
            walk = walk.parent

    def _forward_reach(
        self, start: int, banned: set[int]
    ) -> tuple[set[int], set[int]]:
        """Nodes and edges reachable from node ``start`` without
        traversing a ``banned`` edge.  Inside a SESE region with the
        entry and exit barred, this stays within the region, so the
        sweep is O(region)."""
        seen_nodes = {start}
        seen_edges: set[int] = set()
        stack = [start]
        while stack:
            nid = stack.pop()
            for edge in self.graph.out_edges(nid):
                if edge.id in banned:
                    continue
                seen_edges.add(edge.id)
                if edge.dst not in seen_nodes:
                    seen_nodes.add(edge.dst)
                    stack.append(edge.dst)
        return seen_nodes, seen_edges

    def _on_cycle(self, from_edge: int, to_edge: int) -> bool:
        """Does a path run from ``from_edge``'s head to ``to_edge``'s
        tail (i.e. did the spliced original lie on a cycle)?"""
        start = self.graph.edge(from_edge).dst
        goal = self.graph.edge(to_edge).src
        seen_nodes, _ = self._forward_reach(start, set())
        return goal in seen_nodes

    def _rebuild_from_scratch(self, counter: WorkCounter | None) -> None:
        """Fallback for edits whose region consequences are non-local
        (multi-entry cycles with no closer region to exchange members
        with): recompute everything and adopt the fresh tables."""
        fresh = ProgramStructure(self.graph)
        for name in (
            "_dom", "_pdom", "_substrate_version", "edge_class", "classes",
            "regions", "opens", "region_of_node", "region_of_edge", "roots",
            "_direct_defs", "_defs_in",
        ):
            setattr(self, name, getattr(fresh, name))
        self._touched = None
        if counter is not None:
            counter.tick("sese_incremental_rebuilds")

    def consume_touched(self) -> "set | None":
        """The regions whose equation units may differ from the previous
        consume (``None`` members standing for the virtual root), or
        ``None`` when the answer is unknown and everything must be
        treated as touched.  Resets the accumulator, so each caller sees
        each edit's effects exactly once."""
        touched = self._touched
        self._touched = []
        if touched is None:
            return None
        return set(touched)

    def _rekey(
        self,
        region: Region,
        entry: int | None = None,
        exit: int | None = None,
    ) -> None:
        """Mutate a region's boundary.  ``Region.__hash__`` is derived
        from ``(entry, exit)``, so every Region-keyed dict entry is
        popped first and reinserted under the new hash."""
        direct = self._direct_defs.pop(region, None)
        defs = self._defs_in.pop(region, None)
        if entry is not None:
            region.entry = entry
        if exit is not None:
            region.exit = exit
        if direct is not None:
            self._direct_defs[region] = direct
        if defs is not None:
            self._defs_in[region] = defs

    def _reindex_class(self, cls: int) -> None:
        """Restore ``Region.index`` (= the entry edge's position within
        its class) after an insertion or removal."""
        for i, eid in enumerate(self.classes[cls]):
            region = self.opens.get(eid)
            if region is not None and region.class_id == cls:
                region.index = i

    # -- queries -----------------------------------------------------------

    def defs_in(self, region: Region) -> frozenset[str]:
        """Variables assigned anywhere inside ``region`` (bounds excluded)."""
        return self._defs_in[region]

    def same_class(self, eid1: int, eid2: int) -> bool:
        return self.edge_class[eid1] == self.edge_class[eid2]

    def is_sese(self, entry: int, exit: int) -> bool:
        """Theorem 1 check for an arbitrary (not necessarily canonical)
        edge pair: same class, entry dominates exit, exit postdominates
        entry."""
        return (
            entry != exit
            and self.same_class(entry, exit)
            and self.dom.dominates(edge_key(entry), edge_key(exit))
            and self.pdom.dominates(edge_key(exit), edge_key(entry))
        )

    def contains_node(self, region: Region, nid: int) -> bool:
        """Is node ``nid`` strictly inside ``region``?"""
        key = node_key(nid)
        return self.dom.dominates(
            edge_key(region.entry), key
        ) and self.pdom.dominates(edge_key(region.exit), key)

    def contains_edge(self, region: Region, eid: int) -> bool:
        """Is edge ``eid`` strictly inside ``region`` (bounds excluded)?"""
        if eid in (region.entry, region.exit):
            return False
        key = edge_key(eid)
        return self.dom.dominates(
            edge_key(region.entry), key
        ) and self.pdom.dominates(edge_key(region.exit), key)

    # -- internals -----------------------------------------------------------

    def _smallest_region(self, key: tuple[str, int]) -> Region | None:
        """The smallest canonical region strictly containing ``key``.

        Walk up the dominator tree of the split graph; the first region
        entry whose matching exit postdominates ``key`` -- and is not
        ``key`` itself -- is the smallest enclosing region.  (A deeper
        entry whose region had already closed before ``key`` necessarily
        has its exit edge on the walk first, so it cannot be picked.)
        """
        if key not in self.dom.idom:
            return None
        current = self.dom.idom_of(key)
        while current is not None:
            kind, ident = current
            if kind == "e":
                region = self.opens.get(ident)
                if (
                    region is not None
                    and edge_key(region.exit) != key
                    and edge_key(region.exit) in self.pdom.idom
                    and self.pdom.dominates(edge_key(region.exit), key)
                ):
                    return region
            current = self.dom.idom_of(current)
        return None


def build_program_structure(graph: CFG) -> ProgramStructure:
    """Convenience constructor (mirrors the other build_* entry points)."""
    return ProgramStructure(graph)
