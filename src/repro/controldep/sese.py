"""Canonical SESE regions and the program structure tree.

Theorem 1 of the paper: edges ``e1``, ``e2`` enclose a single-entry
single-exit region iff ``e1`` dominates ``e2``, ``e2`` postdominates
``e1``, and they are cycle equivalent -- equivalently, iff they have the
same control dependence.  The edges of one cycle-equivalence class are
totally ordered by dominance; *consecutive* pairs bound the canonical
(non-composed) regions, and because canonical regions are pairwise
nested, disjoint or sequentially ordered, they form a tree: the program
structure tree (PST).

The structure computed here drives DFG construction (Section 3.2):

* ``classes``          -- each class's edges in dominance order;
* ``regions``          -- one canonical region per consecutive pair;
* ``region_of_node``   -- the smallest region strictly containing a node;
* ``region_of_edge``   -- likewise for edges (boundary edges belong to the
  *enclosing* region, not the one they bound);
* ``defs_in``          -- variables assigned anywhere inside a region,
  aggregated bottom-up over the PST (step 1 of the construction
  algorithm: "determine the variables defined within each single-entry
  single-exit region ... by an inside-out traversal").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cfg.graph import CFG
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.graphs.dominance import (
    DominatorTree,
    edge_dominators,
    edge_key,
    edge_postdominators,
    node_key,
)
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph


@dataclass
class Region:
    """A canonical SESE region bounded by ``entry`` and ``exit`` edge ids.

    ``class_id``/``index`` locate the entry edge within its ordered
    cycle-equivalence class; consecutive regions of one class are the
    sequential siblings the bypassing step walks over.
    """

    entry: int
    exit: int
    class_id: int
    index: int
    parent: "Region | None" = None
    children: list["Region"] = field(default_factory=list, repr=False)
    depth: int = 0

    def __hash__(self) -> int:
        return hash((self.entry, self.exit))

    def __repr__(self) -> str:
        return f"Region(entry=e{self.entry}, exit=e{self.exit})"


class ProgramStructure:
    """Cycle-equivalence classes, canonical regions, and the PST.

    The three substrates -- edge dominators, edge postdominators, and the
    cycle-equivalence partition -- are computed on demand, but callers
    that already hold them (the analysis pipeline manager caches each as
    its own pass) can inject them and pay only for the region/PST
    assembly.
    """

    def __init__(
        self,
        graph: CFG,
        dom: DominatorTree | None = None,
        pdom: DominatorTree | None = None,
        edge_class: dict[int, int] | None = None,
        counter: WorkCounter | None = None,
        csr: "CSRGraph | None" = None,
    ) -> None:
        counter = counter if counter is not None else WorkCounter()
        self.graph = graph
        if csr is None and (dom is None or pdom is None or edge_class is None):
            # Build the flat-array snapshot once and share it across all
            # substrates computed here.
            from repro.perf.csr import build_csr

            csr = build_csr(graph)
        self.dom: DominatorTree = (
            dom if dom is not None else edge_dominators(graph, csr=csr)
        )
        self.pdom: DominatorTree = (
            pdom if pdom is not None else edge_postdominators(graph, csr=csr)
        )
        self.edge_class: dict[int, int] = (
            edge_class
            if edge_class is not None
            else cycle_equivalence(graph, counter, csr=csr)
        )

        grouped: dict[int, list[int]] = defaultdict(list)
        for eid, cls in self.edge_class.items():
            counter.tick("sese_edge_groupings")
            grouped[cls].append(eid)
        #: class id -> edge ids in dominance order (entry-most first).
        self.classes: dict[int, list[int]] = {
            cls: sorted(eids, key=lambda e: self.dom.depth(edge_key(e)))
            for cls, eids in grouped.items()
        }

        self.regions: list[Region] = []
        #: edge id -> the region it opens (entry edge), if any.
        self.opens: dict[int, Region] = {}
        for cls, eids in self.classes.items():
            for index in range(len(eids) - 1):
                counter.tick("sese_regions_built")
                region = Region(eids[index], eids[index + 1], cls, index)
                self.regions.append(region)
                self.opens[eids[index]] = region

        self.region_of_node: dict[int, Region | None] = {
            nid: self._smallest_region(node_key(nid)) for nid in graph.nodes
        }
        self.region_of_edge: dict[int, Region | None] = {
            eid: self._smallest_region(edge_key(eid)) for eid in graph.edges
        }

        # PST: a region's parent is the smallest region strictly
        # containing its entry edge.
        roots: list[Region] = []
        for region in self.regions:
            parent = self.region_of_edge[region.entry]
            region.parent = parent
            if parent is None:
                roots.append(region)
            else:
                parent.children.append(region)
        self.roots = roots
        stack = [(r, 1) for r in roots]
        while stack:
            region, depth = stack.pop()
            region.depth = depth
            stack.extend((c, depth + 1) for c in region.children)

        # Inside-out def aggregation (construction step 1).
        self._direct_defs: dict[Region | None, set[str]] = defaultdict(set)
        for node in graph.assign_nodes():
            region = self.region_of_node[node.id]
            assert node.target is not None
            self._direct_defs[region].add(node.target)
        self._defs_in: dict[Region, frozenset[str]] = {}
        for region in sorted(self.regions, key=lambda r: -r.depth):
            combined = set(self._direct_defs.get(region, ()))
            for child in region.children:
                combined |= self._defs_in[child]
            self._defs_in[region] = frozenset(combined)

    # -- queries -----------------------------------------------------------

    def defs_in(self, region: Region) -> frozenset[str]:
        """Variables assigned anywhere inside ``region`` (bounds excluded)."""
        return self._defs_in[region]

    def same_class(self, eid1: int, eid2: int) -> bool:
        return self.edge_class[eid1] == self.edge_class[eid2]

    def is_sese(self, entry: int, exit: int) -> bool:
        """Theorem 1 check for an arbitrary (not necessarily canonical)
        edge pair: same class, entry dominates exit, exit postdominates
        entry."""
        return (
            entry != exit
            and self.same_class(entry, exit)
            and self.dom.dominates(edge_key(entry), edge_key(exit))
            and self.pdom.dominates(edge_key(exit), edge_key(entry))
        )

    def contains_node(self, region: Region, nid: int) -> bool:
        """Is node ``nid`` strictly inside ``region``?"""
        key = node_key(nid)
        return self.dom.dominates(
            edge_key(region.entry), key
        ) and self.pdom.dominates(edge_key(region.exit), key)

    def contains_edge(self, region: Region, eid: int) -> bool:
        """Is edge ``eid`` strictly inside ``region`` (bounds excluded)?"""
        if eid in (region.entry, region.exit):
            return False
        key = edge_key(eid)
        return self.dom.dominates(
            edge_key(region.entry), key
        ) and self.pdom.dominates(edge_key(region.exit), key)

    # -- internals -----------------------------------------------------------

    def _smallest_region(self, key: tuple[str, int]) -> Region | None:
        """The smallest canonical region strictly containing ``key``.

        Walk up the dominator tree of the split graph; the first region
        entry whose matching exit postdominates ``key`` -- and is not
        ``key`` itself -- is the smallest enclosing region.  (A deeper
        entry whose region had already closed before ``key`` necessarily
        has its exit edge on the walk first, so it cannot be picked.)
        """
        if key not in self.dom.idom:
            return None
        current = self.dom.idom_of(key)
        while current is not None:
            kind, ident = current
            if kind == "e":
                region = self.opens.get(ident)
                if (
                    region is not None
                    and edge_key(region.exit) != key
                    and edge_key(region.exit) in self.pdom.idom
                    and self.pdom.dominates(edge_key(region.exit), key)
                ):
                    return region
            current = self.dom.idom_of(current)
        return None


def build_program_structure(graph: CFG) -> ProgramStructure:
    """Convenience constructor (mirrors the other build_* entry points)."""
    return ProgramStructure(graph)
