"""Standard control dependence via postdominators (the baseline).

Ferrante-Ottenstein-Warren: ``x`` is control dependent on CFG edge
``(u, v)`` iff ``x`` postdominates ``v`` but does not postdominate ``u``.
Definition 2 of the paper extends the notion to edges, which we realize
on the *split graph* (every CFG edge materialized as a dummy node), so
both node and edge control-dependence sets come out of one computation.

The construction walks, for every CFG edge ``e = (u, v)``, the
postdominator tree from ``e`` up to (exclusively) the immediate
postdominator of ``u`` -- everything on that path is control dependent on
``e``.  Worst-case output (and time) is quadratic; the whole point of the
paper's cycle-equivalence algorithm is to avoid materializing these sets
when only control-dependence *equivalence* is needed.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cfg.graph import CFG
from repro.graphs.dominance import (
    DominatorTree,
    edge_key,
    edge_postdominators,
    node_key,
)
from repro.util.counters import WorkCounter


def control_dependence_items(
    graph: CFG,
    pdom: DominatorTree | None = None,
    counter: WorkCounter | None = None,
) -> dict[tuple[str, int], frozenset[int]]:
    """Control-dependence sets for every node key ``("n", id)`` and edge
    key ``("e", id)``: the set of CFG edge ids each item is control
    dependent on.  A precomputed edge-postdominator tree can be injected
    (the pipeline manager caches it as its own pass)."""
    counter = counter if counter is not None else WorkCounter()
    pdom = pdom if pdom is not None else edge_postdominators(graph)
    deps: dict[tuple[str, int], set[int]] = defaultdict(set)
    for eid, edge in graph.edges.items():
        stop = pdom.idom_of(node_key(edge.src))
        runner: tuple[str, int] | None = edge_key(eid)
        while runner is not None and runner != stop:
            counter.tick("cdg_walk_steps")
            deps[runner].add(eid)
            runner = pdom.idom_of(runner)
    result: dict[tuple[str, int], frozenset[int]] = {}
    for nid in graph.nodes:
        result[node_key(nid)] = frozenset(deps.get(node_key(nid), ()))
    for eid in graph.edges:
        result[edge_key(eid)] = frozenset(deps.get(edge_key(eid), ()))
    return result


def control_dependence_nodes(graph: CFG) -> dict[int, frozenset[int]]:
    """``{node_id: frozenset of controlling edge ids}``."""
    items = control_dependence_items(graph)
    return {nid: items[node_key(nid)] for nid in graph.nodes}


def control_dependence_edges(graph: CFG) -> dict[int, frozenset[int]]:
    """``{edge_id: frozenset of controlling edge ids}`` (Definition 2)."""
    items = control_dependence_items(graph)
    return {eid: items[edge_key(eid)] for eid in graph.edges}
