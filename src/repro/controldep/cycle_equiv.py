"""Cycle equivalence of CFG edges in O(E) time.

Two edges are *cycle equivalent* when every cycle containing one contains
the other.  Claim 1 of the paper: two edges have the same control
dependence iff they are cycle equivalent in the strongly connected graph
formed by adding ``end -> start`` to the CFG.  Claim 2 reduces directed
cycle equivalence to cycle equivalence in an undirected graph, which a
single depth-first search can solve with *bracket lists*.

The paper only sketches the DFS ("details omitted"); the algorithm below
is the one the authors published in the companion paper -- R. Johnson,
D. Pearson, K. Pingali, *The Program Structure Tree: Computing Control
Regions in Linear Time*, PLDI 1994, Figure 14 -- which this module follows
closely:

* undirected DFS from ``start``; in an undirected DFS every non-tree edge
  joins a node to one of its ancestors (a *backedge*);
* each backedge spanning a tree edge acts as a *bracket*; two tree edges
  are cycle equivalent iff they have the same set of brackets;
* bracket sets are maintained bottom-up as doubly-linked lists with O(1)
  concatenate / push / delete, and are *named* by the pair (topmost
  bracket, list size), so equality of sets is decided without comparing
  contents;
* *capping backedges* summarize the second-highest-reaching child of a
  node so that sibling subtrees cannot be confused as equivalent;
* a backedge that is the lone bracket of a tree edge is equivalent to it.

Strong connectivity of the augmented graph guarantees the undirected
graph is 2-edge-connected (every edge lies on a cycle), so every tree
edge has at least one bracket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG
from repro.util.counters import WorkCounter

#: Sentinel id for the synthetic end->start edge (never a real edge id).
SYNTHETIC_EDGE = -1

_INF = float("inf")


class _Bracket:
    """A backedge acting as a bracket: either a real undirected edge or a
    synthetic capping backedge."""

    __slots__ = (
        "uedge", "recent_size", "recent_class", "prev", "nxt", "deleted"
    )

    def __init__(self, uedge: "_UEdge | None") -> None:
        self.uedge = uedge  # None for capping backedges
        self.recent_size = -1
        self.recent_class: int | None = None
        self.prev: _Bracket | None = None
        self.nxt: _Bracket | None = None
        self.deleted = False


class _BracketList:
    """Doubly-linked bracket list with O(1) push/top/delete/concat.

    Concatenation splices lists destructively; deletion unlinks a bracket
    from whichever list currently holds it.  The algorithm only ever
    deletes brackets after they have been concatenated into the list of
    the vertex being processed, so sizes stay exact.
    """

    __slots__ = ("head", "tail", "size")

    def __init__(self) -> None:
        self.head: _Bracket | None = None  # top (most recently pushed)
        self.tail: _Bracket | None = None
        self.size = 0

    def push(self, bracket: _Bracket) -> None:
        bracket.prev = None
        bracket.nxt = self.head
        if self.head is not None:
            self.head.prev = bracket
        self.head = bracket
        if self.tail is None:
            self.tail = bracket
        self.size += 1

    def top(self) -> _Bracket | None:
        return self.head

    def delete(self, bracket: _Bracket) -> None:
        if bracket.deleted:
            return
        bracket.deleted = True
        if bracket.prev is not None:
            bracket.prev.nxt = bracket.nxt
        else:
            self.head = bracket.nxt
        if bracket.nxt is not None:
            bracket.nxt.prev = bracket.prev
        else:
            self.tail = bracket.prev
        bracket.prev = bracket.nxt = None
        self.size -= 1

    def concat(self, other: "_BracketList") -> None:
        """Splice ``other`` underneath this list's elements."""
        if other.size == 0:
            return
        if self.size == 0:
            self.head, self.tail, self.size = other.head, other.tail, other.size
        else:
            assert self.tail is not None
            self.tail.nxt = other.head
            other.head.prev = self.tail
            self.tail = other.tail
            self.size += other.size
        other.head = other.tail = None
        other.size = 0


@dataclass
class _UEdge:
    """An undirected edge of the augmented graph."""

    eid: int  # CFG edge id, or SYNTHETIC_EDGE
    u: int
    v: int
    used: bool = False
    is_tree: bool = False
    cls: int | None = None
    bracket: _Bracket | None = field(default=None, repr=False)


class _Fresh:
    """Equivalence-class id allocator."""

    def __init__(self) -> None:
        self.next_id = 0

    def __call__(self) -> int:
        cls = self.next_id
        self.next_id += 1
        return cls


def cycle_equivalence(
    graph: CFG, counter: WorkCounter | None = None
) -> dict[int, int]:
    """Partition the CFG's edges into cycle-equivalence classes.

    Returns ``{edge_id: class_id}``.  The classes are those of the
    strongly connected augmentation (CFG plus ``end -> start``); the
    synthetic edge itself is omitted from the result.  Runs in O(E) --
    ``counter`` records ``ce_dfs_steps`` (adjacency entries examined) and
    ``ce_bracket_ops`` (bracket pushes/deletes/concats), which together
    witness the linear bound.
    """
    counter = counter if counter is not None else WorkCounter()
    fresh = _Fresh()
    uedges: list[_UEdge] = []
    adjacency: dict[int, list[tuple[int, int]]] = {n: [] for n in graph.nodes}
    result: dict[int, int] = {}

    for eid, edge in graph.edges.items():
        if edge.src == edge.dst:
            # A self-loop is a cycle by itself: its own singleton class.
            result[eid] = fresh()
            continue
        index = len(uedges)
        uedges.append(_UEdge(eid, edge.src, edge.dst))
        adjacency[edge.src].append((index, edge.dst))
        adjacency[edge.dst].append((index, edge.src))
    if graph.start != graph.end:
        index = len(uedges)
        uedges.append(_UEdge(SYNTHETIC_EDGE, graph.end, graph.start))
        adjacency[graph.end].append((index, graph.start))
        adjacency[graph.start].append((index, graph.end))

    # ---- undirected DFS -------------------------------------------------
    dfsnum: dict[int, int] = {}
    node_at: list[int] = []
    parent_uedge: dict[int, _UEdge] = {}
    children: dict[int, list[int]] = {n: [] for n in graph.nodes}
    backedges_from: dict[int, list[_UEdge]] = {n: [] for n in graph.nodes}
    backedges_to: dict[int, list[_UEdge]] = {n: [] for n in graph.nodes}
    capping_to: dict[int, list[_Bracket]] = {n: [] for n in graph.nodes}

    root = graph.start
    dfsnum[root] = 0
    node_at.append(root)
    stack: list[tuple[int, int]] = [(root, 0)]  # (vertex, adjacency cursor)
    while stack:
        vertex, cursor = stack[-1]
        if cursor >= len(adjacency[vertex]):
            stack.pop()
            continue
        stack[-1] = (vertex, cursor + 1)
        counter.tick("ce_dfs_steps")
        index, other = adjacency[vertex][cursor]
        uedge = uedges[index]
        if uedge.used:
            continue
        uedge.used = True
        if other not in dfsnum:
            uedge.is_tree = True
            dfsnum[other] = len(node_at)
            node_at.append(other)
            parent_uedge[other] = uedge
            children[vertex].append(other)
            stack.append((other, 0))
        else:
            # Non-tree undirected edge: `other` is an ancestor of `vertex`.
            backedges_from[vertex].append(uedge)
            backedges_to[other].append(uedge)

    # ---- bottom-up bracket pass -----------------------------------------
    hi: dict[int, float] = {}
    blist: dict[int, _BracketList] = {}
    for vertex in reversed(node_at):
        num = dfsnum[vertex]
        hi0 = min(
            (dfsnum[_other_end(b, vertex)] for b in backedges_from[vertex]),
            default=_INF,
        )
        kid_his = sorted(hi[c] for c in children[vertex])
        hi1 = kid_his[0] if kid_his else _INF
        hi[vertex] = min(hi0, hi1)
        hi2 = kid_his[1] if len(kid_his) > 1 else _INF

        current = _BracketList()
        for child in children[vertex]:
            counter.tick("ce_bracket_ops")
            current.concat(blist[child])
        for capping in capping_to[vertex]:
            counter.tick("ce_bracket_ops")
            current.delete(capping)
        for backedge in backedges_to[vertex]:
            assert backedge.bracket is not None
            counter.tick("ce_bracket_ops")
            current.delete(backedge.bracket)
            if backedge.cls is None:
                backedge.cls = fresh()
        for backedge in backedges_from[vertex]:
            bracket = _Bracket(backedge)
            backedge.bracket = bracket
            counter.tick("ce_bracket_ops")
            current.push(bracket)
        if hi2 < num:
            # A second child also reaches above this vertex: cap it so the
            # sibling subtrees cannot share bracket names.
            capping = _Bracket(None)
            current.push(capping)
            capping_to[node_at[int(hi2)]].append(capping)
        blist[vertex] = current

        if vertex != root:
            tree_edge = parent_uedge[vertex]
            top = current.top()
            assert top is not None, (
                "tree edge with empty bracket list -- augmented graph not "
                "2-edge-connected (is the CFG valid?)"
            )
            if top.recent_size != current.size:
                top.recent_size = current.size
                top.recent_class = fresh()
            tree_edge.cls = top.recent_class
            if top.recent_size == 1 and top.uedge is not None:
                # The tree edge's lone bracket is equivalent to it.
                top.uedge.cls = tree_edge.cls

    for uedge in uedges:
        if uedge.eid == SYNTHETIC_EDGE:
            continue
        assert uedge.cls is not None, f"unclassified edge {uedge.eid}"
        result[uedge.eid] = uedge.cls
    return result


def _other_end(uedge: _UEdge, vertex: int) -> int:
    return uedge.v if uedge.u == vertex else uedge.u
