"""Cycle equivalence of CFG edges in O(E) time.

Two edges are *cycle equivalent* when every cycle containing one contains
the other.  Claim 1 of the paper: two edges have the same control
dependence iff they are cycle equivalent in the strongly connected graph
formed by adding ``end -> start`` to the CFG.  Claim 2 reduces directed
cycle equivalence to cycle equivalence in an undirected graph, which a
single depth-first search can solve with *bracket lists*.

The paper only sketches the DFS ("details omitted"); the algorithm below
is the one the authors published in the companion paper -- R. Johnson,
D. Pearson, K. Pingali, *The Program Structure Tree: Computing Control
Regions in Linear Time*, PLDI 1994, Figure 14 -- which this module follows
closely:

* undirected DFS from ``start``; in an undirected DFS every non-tree edge
  joins a node to one of its ancestors (a *backedge*);
* each backedge spanning a tree edge acts as a *bracket*; two tree edges
  are cycle equivalent iff they have the same set of brackets;
* bracket sets are maintained bottom-up as doubly-linked lists with O(1)
  concatenate / push / delete, and are *named* by the pair (topmost
  bracket, list size), so equality of sets is decided without comparing
  contents;
* *capping backedges* summarize the second-highest-reaching child of a
  node so that sibling subtrees cannot be confused as equivalent;
* a backedge that is the lone bracket of a tree edge is equivalent to it.

Strong connectivity of the augmented graph guarantees the undirected
graph is 2-edge-connected (every edge lies on a cycle), so every tree
edge has at least one bracket.

Two implementations share the bracket-list machinery:
:func:`cycle_equivalence` is the CSR fast path -- flat integer arrays
for the undirected adjacency, the DFS stack and the per-vertex
bookkeeping, with work counted in locals and ticked once at the end --
and :func:`cycle_equivalence_reference` is the legacy dict-based
version.  Both walk the adjacency in the same order, so they emit
*identical class ids*, not merely the same partition; the equivalence
tests assert exact dict equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cfg.graph import CFG
from repro.util.counters import WorkCounter

if TYPE_CHECKING:
    from repro.perf.csr import CSRGraph

#: Sentinel id for the synthetic end->start edge (never a real edge id).
SYNTHETIC_EDGE = -1

_INF = float("inf")


class _Bracket:
    """A backedge acting as a bracket: either a real undirected edge
    (``uedge`` is a :class:`_UEdge`) or a synthetic capping backedge
    (``uedge is None``)."""

    __slots__ = (
        "uedge", "recent_size", "recent_class", "prev", "nxt", "deleted"
    )

    def __init__(self, uedge: "_UEdge | None") -> None:
        self.uedge = uedge
        self.recent_size = -1
        self.recent_class: int | None = None
        self.prev: _Bracket | None = None
        self.nxt: _Bracket | None = None
        self.deleted = False


class _BracketList:
    """Doubly-linked bracket list with O(1) push/top/delete/concat.

    Concatenation splices lists destructively; deletion unlinks a bracket
    from whichever list currently holds it.  The algorithm only ever
    deletes brackets after they have been concatenated into the list of
    the vertex being processed, so sizes stay exact.
    """

    __slots__ = ("head", "tail", "size")

    def __init__(self) -> None:
        self.head: _Bracket | None = None  # top (most recently pushed)
        self.tail: _Bracket | None = None
        self.size = 0

    def push(self, bracket: _Bracket) -> None:
        bracket.prev = None
        bracket.nxt = self.head
        if self.head is not None:
            self.head.prev = bracket
        self.head = bracket
        if self.tail is None:
            self.tail = bracket
        self.size += 1

    def top(self) -> _Bracket | None:
        return self.head

    def delete(self, bracket: _Bracket) -> None:
        if bracket.deleted:
            return
        bracket.deleted = True
        if bracket.prev is not None:
            bracket.prev.nxt = bracket.nxt
        else:
            self.head = bracket.nxt
        if bracket.nxt is not None:
            bracket.nxt.prev = bracket.prev
        else:
            self.tail = bracket.prev
        bracket.prev = bracket.nxt = None
        self.size -= 1

    def concat(self, other: "_BracketList") -> None:
        """Splice ``other`` underneath this list's elements."""
        if other.size == 0:
            return
        if self.size == 0:
            self.head, self.tail, self.size = other.head, other.tail, other.size
        else:
            assert self.tail is not None
            self.tail.nxt = other.head
            other.head.prev = self.tail
            self.tail = other.tail
            self.size += other.size
        other.head = other.tail = None
        other.size = 0


@dataclass
class _UEdge:
    """An undirected edge of the augmented graph."""

    eid: int  # CFG edge id, or SYNTHETIC_EDGE
    u: int
    v: int
    used: bool = False
    is_tree: bool = False
    cls: int | None = None
    bracket: _Bracket | None = field(default=None, repr=False)


class _Fresh:
    """Equivalence-class id allocator."""

    def __init__(self) -> None:
        self.next_id = 0

    def __call__(self) -> int:
        cls = self.next_id
        self.next_id += 1
        return cls


def cycle_equivalence(
    graph: CFG,
    counter: WorkCounter | None = None,
    csr: "CSRGraph | None" = None,
) -> dict[int, int]:
    """Partition the CFG's edges into cycle-equivalence classes.

    Returns ``{edge_id: class_id}``.  The classes are those of the
    strongly connected augmentation (CFG plus ``end -> start``); the
    synthetic edge itself is omitted from the result.  Runs in O(E) --
    ``counter`` records ``ce_dfs_steps`` (adjacency entries examined) and
    ``ce_bracket_ops`` (bracket pushes/deletes/concats), which together
    witness the linear bound.

    This is the CSR fast path; pass a warm ``csr`` snapshot to skip the
    O(V+E) rebuild.  :func:`cycle_equivalence_reference` computes the
    same result on the legacy dict representation.
    """
    if csr is not None:
        csr.check()
    else:
        from repro.perf.csr import build_csr

        csr = build_csr(graph)
    counter = counter if counter is not None else WorkCounter()

    n, m = csr.n, csr.m
    edge_src, edge_dst, edge_ids = csr.edge_src, csr.edge_dst, csr.edge_ids
    result: dict[int, int] = {}
    next_class = 0

    # ---- undirected augmented adjacency, in flat arrays ------------------
    # Same construction order as the reference: each non-self-loop edge
    # appends (uedge, dst) to src's list then (uedge, src) to dst's list;
    # the synthetic end->start edge goes last.  A stable two-pass
    # counting fill reproduces the per-vertex entry order exactly.
    self_loops = [e for e in range(m) if edge_src[e] == edge_dst[e]]
    if self_loops:
        loop_set = set(self_loops)
        for e in self_loops:
            # A self-loop is a cycle by itself: its own singleton class.
            result[edge_ids[e]] = next_class
            next_class += 1
        ue_eid = [e for e in range(m) if e not in loop_set]
        ue_u = [edge_src[e] for e in ue_eid]
        ue_v = [edge_dst[e] for e in ue_eid]
        degree = [0] * n
        for u in ue_u:
            degree[u] += 1
        for v in ue_v:
            degree[v] += 1
    else:
        # Common case: the undirected edge list is the dense edge list,
        # and every vertex's degree is just out-degree + in-degree.
        ue_eid = list(range(m))
        ue_u = list(edge_src)
        ue_v = list(edge_dst)
        succ_off, pred_off = csr.succ_off, csr.pred_off
        degree = [
            succ_off[v + 1] - succ_off[v] + pred_off[v + 1] - pred_off[v]
            for v in range(n)
        ]
    if csr.start != csr.end:
        ue_eid.append(SYNTHETIC_EDGE)
        ue_u.append(csr.end)
        ue_v.append(csr.start)
        degree[csr.end] += 1
        degree[csr.start] += 1
    num_ue = len(ue_eid)

    adj_off = [0] * (n + 1)
    for v in range(n):
        adj_off[v + 1] = adj_off[v] + degree[v]
    adj_ue = [0] * (2 * num_ue)
    adj_other = [0] * (2 * num_ue)
    cursor = list(adj_off[:-1])
    for index in range(num_ue):
        u, v = ue_u[index], ue_v[index]
        at = cursor[u]
        adj_ue[at] = index
        adj_other[at] = v
        cursor[u] = at + 1
        at = cursor[v]
        adj_ue[at] = index
        adj_other[at] = u
        cursor[v] = at + 1

    ue_used = bytearray(num_ue)
    ue_cls = [-1] * num_ue

    # ---- undirected DFS --------------------------------------------------
    INF = n + 1
    dfsnum = [-1] * n
    node_at: list[int] = []
    parent_uedge = [-1] * n
    children: list[list[int]] = [[] for _ in range(n)]
    backedges_from: list[list[int]] = [[] for _ in range(n)]
    backedges_to: list[list[int]] = [[] for _ in range(n)]
    capping_to: list[list[int]] = [[] for _ in range(n)]
    dfs_steps = 0

    root = csr.start
    dfsnum[root] = 0
    node_append = node_at.append
    node_append(root)
    stack_vertex: list[int] = []
    stack_cursor: list[int] = []
    vertex = root
    at = adj_off[root]
    limit = adj_off[root + 1]
    while True:
        if at < limit:
            dfs_steps += 1
            index = adj_ue[at]
            other = adj_other[at]
            at += 1
            if ue_used[index]:
                continue
            ue_used[index] = 1
            if dfsnum[other] < 0:
                dfsnum[other] = len(node_at)
                node_append(other)
                parent_uedge[other] = index
                children[vertex].append(other)
                stack_vertex.append(vertex)
                stack_cursor.append(at)
                vertex = other
                at = adj_off[other]
                limit = adj_off[other + 1]
            else:
                # Non-tree edge: `other` is an ancestor of `vertex`.
                backedges_from[vertex].append(index)
                backedges_to[other].append(index)
        elif stack_vertex:
            vertex = stack_vertex.pop()
            at = stack_cursor.pop()
            limit = adj_off[vertex + 1]
        else:
            break

    # ---- bottom-up bracket pass ------------------------------------------
    # Brackets live in flat parallel arrays: bracket ids < num_ue are the
    # (unique) bracket of that undirected backedge; ids >= num_ue are
    # capping brackets.  Each vertex's bracket list is a doubly linked
    # chain through br_prev/br_nxt with (head, tail, size) per vertex,
    # and all splicing happens inline on locals -- no objects, no method
    # dispatch in the O(E) loop.
    total_brackets = num_ue + n + 1
    br_prev = [-1] * total_brackets
    br_nxt = [-1] * total_brackets
    br_deleted = bytearray(total_brackets)
    br_recent_size = [-1] * total_brackets
    br_recent_class = [-1] * total_brackets
    next_capping = num_ue

    hi = [INF] * n
    bl_head = [-1] * n
    bl_tail = [-1] * n
    bl_size = [0] * n
    bracket_ops = 0
    for vertex in reversed(node_at):
        num = dfsnum[vertex]
        hi0 = INF
        for index in backedges_from[vertex]:
            other = ue_v[index] if ue_u[index] == vertex else ue_u[index]
            if dfsnum[other] < hi0:
                hi0 = dfsnum[other]
        # hi1/hi2: the two smallest child hi values (no sort needed).
        hi1 = INF
        hi2 = INF
        for child in children[vertex]:
            h = hi[child]
            if h < hi1:
                hi2 = hi1
                hi1 = h
            elif h < hi2:
                hi2 = h
        hi[vertex] = hi0 if hi0 < hi1 else hi1

        head = -1
        tail = -1
        size = 0
        for child in children[vertex]:
            bracket_ops += 1
            csize = bl_size[child]
            if csize == 0:
                continue
            chead = bl_head[child]
            if size == 0:
                head, tail, size = chead, bl_tail[child], csize
            else:
                br_nxt[tail] = chead
                br_prev[chead] = tail
                tail = bl_tail[child]
                size += csize
        for bracket in capping_to[vertex]:
            bracket_ops += 1
            if not br_deleted[bracket]:
                br_deleted[bracket] = 1
                p = br_prev[bracket]
                nx = br_nxt[bracket]
                if p >= 0:
                    br_nxt[p] = nx
                else:
                    head = nx
                if nx >= 0:
                    br_prev[nx] = p
                else:
                    tail = p
                size -= 1
        for index in backedges_to[vertex]:
            bracket_ops += 1
            if not br_deleted[index]:
                br_deleted[index] = 1
                p = br_prev[index]
                nx = br_nxt[index]
                if p >= 0:
                    br_nxt[p] = nx
                else:
                    head = nx
                if nx >= 0:
                    br_prev[nx] = p
                else:
                    tail = p
                size -= 1
            if ue_cls[index] < 0:
                ue_cls[index] = next_class
                next_class += 1
        for index in backedges_from[vertex]:
            # Push this backedge's bracket (id == its uedge index).
            bracket_ops += 1
            br_nxt[index] = head
            if head >= 0:
                br_prev[head] = index
            head = index
            if tail < 0:
                tail = index
            size += 1
        if hi2 < num:
            # A second child also reaches above this vertex: cap it so the
            # sibling subtrees cannot share bracket names.
            capping = next_capping
            next_capping += 1
            br_nxt[capping] = head
            if head >= 0:
                br_prev[head] = capping
            head = capping
            if tail < 0:
                tail = capping
            size += 1
            capping_to[node_at[hi2]].append(capping)
        bl_head[vertex] = head
        bl_tail[vertex] = tail
        bl_size[vertex] = size

        if vertex != root:
            assert head >= 0, (
                "tree edge with empty bracket list -- augmented graph not "
                "2-edge-connected (is the CFG valid?)"
            )
            if br_recent_size[head] != size:
                br_recent_size[head] = size
                br_recent_class[head] = next_class
                next_class += 1
            tree_index = parent_uedge[vertex]
            ue_cls[tree_index] = br_recent_class[head]
            if size == 1 and head < num_ue:
                # The tree edge's lone bracket is equivalent to it.
                ue_cls[head] = ue_cls[tree_index]

    for index in range(num_ue):
        e = ue_eid[index]
        if e == SYNTHETIC_EDGE:
            continue
        cls = ue_cls[index]
        assert cls >= 0, f"unclassified edge {edge_ids[e]}"
        result[edge_ids[e]] = cls
    counter.tick("ce_dfs_steps", dfs_steps)
    counter.tick("ce_bracket_ops", bracket_ops)
    return result


def cycle_equivalence_reference(
    graph: CFG, counter: WorkCounter | None = None
) -> dict[int, int]:
    """The legacy dict-based implementation (equivalence-test oracle).

    Emits the same class ids as :func:`cycle_equivalence`: both walk the
    undirected adjacency in the same construction order.
    """
    counter = counter if counter is not None else WorkCounter()
    fresh = _Fresh()
    uedges: list[_UEdge] = []
    adjacency: dict[int, list[tuple[int, int]]] = {n: [] for n in graph.nodes}
    result: dict[int, int] = {}

    for eid, edge in graph.edges.items():
        if edge.src == edge.dst:
            # A self-loop is a cycle by itself: its own singleton class.
            result[eid] = fresh()
            continue
        index = len(uedges)
        uedges.append(_UEdge(eid, edge.src, edge.dst))
        adjacency[edge.src].append((index, edge.dst))
        adjacency[edge.dst].append((index, edge.src))
    if graph.start != graph.end:
        index = len(uedges)
        uedges.append(_UEdge(SYNTHETIC_EDGE, graph.end, graph.start))
        adjacency[graph.end].append((index, graph.start))
        adjacency[graph.start].append((index, graph.end))

    # ---- undirected DFS -------------------------------------------------
    dfsnum: dict[int, int] = {}
    node_at: list[int] = []
    parent_uedge: dict[int, _UEdge] = {}
    children: dict[int, list[int]] = {n: [] for n in graph.nodes}
    backedges_from: dict[int, list[_UEdge]] = {n: [] for n in graph.nodes}
    backedges_to: dict[int, list[_UEdge]] = {n: [] for n in graph.nodes}
    capping_to: dict[int, list[_Bracket]] = {n: [] for n in graph.nodes}

    root = graph.start
    dfsnum[root] = 0
    node_at.append(root)
    stack: list[tuple[int, int]] = [(root, 0)]  # (vertex, adjacency cursor)
    while stack:
        vertex, cursor = stack[-1]
        if cursor >= len(adjacency[vertex]):
            stack.pop()
            continue
        stack[-1] = (vertex, cursor + 1)
        counter.tick("ce_dfs_steps")
        index, other = adjacency[vertex][cursor]
        uedge = uedges[index]
        if uedge.used:
            continue
        uedge.used = True
        if other not in dfsnum:
            uedge.is_tree = True
            dfsnum[other] = len(node_at)
            node_at.append(other)
            parent_uedge[other] = uedge
            children[vertex].append(other)
            stack.append((other, 0))
        else:
            # Non-tree undirected edge: `other` is an ancestor of `vertex`.
            backedges_from[vertex].append(uedge)
            backedges_to[other].append(uedge)

    # ---- bottom-up bracket pass -----------------------------------------
    hi: dict[int, float] = {}
    blist: dict[int, _BracketList] = {}
    for vertex in reversed(node_at):
        num = dfsnum[vertex]
        hi0 = min(
            (dfsnum[_other_end(b, vertex)] for b in backedges_from[vertex]),
            default=_INF,
        )
        kid_his = sorted(hi[c] for c in children[vertex])
        hi1 = kid_his[0] if kid_his else _INF
        hi[vertex] = min(hi0, hi1)
        hi2 = kid_his[1] if len(kid_his) > 1 else _INF

        current = _BracketList()
        for child in children[vertex]:
            counter.tick("ce_bracket_ops")
            current.concat(blist[child])
        for capping in capping_to[vertex]:
            counter.tick("ce_bracket_ops")
            current.delete(capping)
        for backedge in backedges_to[vertex]:
            assert backedge.bracket is not None
            counter.tick("ce_bracket_ops")
            current.delete(backedge.bracket)
            if backedge.cls is None:
                backedge.cls = fresh()
        for backedge in backedges_from[vertex]:
            bracket = _Bracket(backedge)
            backedge.bracket = bracket
            counter.tick("ce_bracket_ops")
            current.push(bracket)
        if hi2 < num:
            # A second child also reaches above this vertex: cap it so the
            # sibling subtrees cannot share bracket names.
            capping = _Bracket(None)
            current.push(capping)
            capping_to[node_at[int(hi2)]].append(capping)
        blist[vertex] = current

        if vertex != root:
            tree_edge = parent_uedge[vertex]
            top = current.top()
            assert top is not None, (
                "tree edge with empty bracket list -- augmented graph not "
                "2-edge-connected (is the CFG valid?)"
            )
            if top.recent_size != current.size:
                top.recent_size = current.size
                top.recent_class = fresh()
            tree_edge.cls = top.recent_class
            if top.recent_size == 1 and top.uedge is not None:
                # The tree edge's lone bracket is equivalent to it.
                top.uedge.cls = tree_edge.cls

    for uedge in uedges:
        if uedge.eid == SYNTHETIC_EDGE:
            continue
        assert uedge.cls is not None, f"unclassified edge {uedge.eid}"
        result[uedge.eid] = uedge.cls
    return result


def _other_end(uedge: _UEdge, vertex: int) -> int:
    return uedge.v if uedge.u == vertex else uedge.u
