"""The factored control dependence graph, built in O(E).

"In the context of optimization, control dependence equivalence is more
important than control dependence per se" (Section 6).  The factored CDG
does not materialize per-node dependence sets; it stores the partition of
CFG edges into control-dependence-equivalence classes (= cycle-equivalence
classes of the augmented graph, Claim 1) and answers equivalence queries
in O(1).  Construction is a single cycle-equivalence pass -- no dominators,
no postdominators, no dominance frontiers -- which is the paper's
"factor of N improvement over the best existing algorithm".

When a client *does* need the actual dependence set of an edge, it can be
recovered lazily per class via the standard walk
(:func:`repro.controldep.cdg.control_dependence_items`), paying only for
the classes queried.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cfg.graph import CFG
from repro.controldep.cycle_equiv import cycle_equivalence


@dataclass
class FactoredCDG:
    """The control-dependence-equivalence partition of a CFG's edges."""

    edge_class: dict[int, int]
    members: dict[int, list[int]] = field(default_factory=dict)

    def same_control_dependence(self, eid1: int, eid2: int) -> bool:
        """O(1) *sound* equivalence query: ``True`` implies the edges have
        identical control-dependence sets.

        The partition is cycle equivalence of the augmented graph, which
        *refines* control-dependence-set equality: it never merges edges
        with different dependence sets, but around loops it may split
        edges that share one (a while loop's merge->switch edge shares its
        CD set with the loop-body edges, yet the body cycle avoids it).
        Section 3.3 of the paper notes that any refinement of
        control-dependence equivalence is valid for every use the paper
        makes of the relation, and the dominance/postdominance conditions
        of Theorem 1 make the refined relation exactly the one that
        bounds SESE regions.
        """
        return self.edge_class[eid1] == self.edge_class[eid2]

    def class_of(self, eid: int) -> int:
        return self.edge_class[eid]

    @property
    def num_classes(self) -> int:
        return len(self.members)


def build_factored_cdg(graph: CFG) -> FactoredCDG:
    """Build the factored CDG in O(E) via cycle equivalence (Claim 1)."""
    edge_class = cycle_equivalence(graph)
    members: dict[int, list[int]] = defaultdict(list)
    for eid, cls in edge_class.items():
        members[cls].append(eid)
    return FactoredCDG(edge_class, dict(members))
