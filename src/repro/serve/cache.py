"""The content-addressed cross-run result cache.

Every entry is keyed by the triple ``(source_sha256, pass_name,
engine_version)`` and holds an opaque byte blob -- a pickled pass result
exported through :meth:`repro.pipeline.manager.AnalysisManager.
export_result`, an ``RPA1`` arena payload (the ``arena`` pass's codec),
or a canonical op-level JSON document.  The on-disk layout::

    <root>/<engine_version>/<sha[:2]>/<sha>/<pass_name>.bin

survives daemon restarts and is shared across worker processes.  Safety
properties, each pinned by ``tests/test_serve_cache.py``:

* **Atomic publication.**  Writers write to a same-directory temp file
  and ``os.replace`` it into place, so a reader never observes a
  half-written entry and two concurrent writers of the same key leave
  one complete winner.
* **Self-verifying entries.**  Each file carries a magic tag and the
  SHA-256 of its body.  A corrupted or truncated entry is detected on
  load, evicted (unlinked), and reported as a recoverable
  ``cache-corrupt`` incident -- the caller recomputes; nothing crashes.
* **Versioned keys.**  ``engine_version`` lives in the path, so bumping
  it (any semantic change to a pass) orphans every stale entry instead
  of serving wrong answers.

The cache never stores live objects: callers hand it bytes produced by
a detaching exporter, so no entry can alias a warm manager's mutable
graph (see DESIGN.md section 15 on cache key discipline).
"""

from __future__ import annotations

import hashlib
import os
import uuid

from repro.robust.incidents import IncidentLog

#: Bump on any change that alters a pass result or its serialized form
#: (new analysis semantics, wire-format change, pickle layout change).
#: Old entries are never read again -- the version is part of the path.
ENGINE_VERSION = "pr10.1"

#: Entry envelope: magic + 32-byte SHA-256 of the body + body.
_MAGIC = b"RPC1"
_DIGEST_LEN = 32


def source_sha(source: str) -> str:
    """The content address of a program source (hex SHA-256)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def cache_key_bytes(
    sha: str, pass_name: str, version: str = ENGINE_VERSION
) -> bytes:
    """The canonical byte form of a cache key.

    NUL-separated so no component can collide into another; pinned
    byte-deterministic across ``PYTHONHASHSEED`` by
    ``tests/test_hash_determinism.py``.
    """
    return b"\x00".join(
        part.encode("utf-8") for part in (sha, pass_name, version)
    )


def _safe_component(name: str) -> str:
    """A filesystem-safe file name for a pass name (``op:lint`` and
    friends carry ``:``)."""
    return "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name
    )


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


class ResultCache:
    """A content-addressed blob store under one root directory.

    >>> import tempfile
    >>> cache = ResultCache(tempfile.mkdtemp(), version="v1")
    >>> sha = source_sha("x := 1; print x;")
    >>> cache.load(sha, "constprop") is None
    True
    >>> _ = cache.store(sha, "constprop", b"result-bytes")
    >>> cache.load(sha, "constprop")
    b'result-bytes'
    >>> cache.stats["hits"], cache.stats["misses"], cache.stats["stores"]
    (1, 1, 1)
    """

    def __init__(
        self,
        root: str | None = None,
        version: str = ENGINE_VERSION,
        incidents: IncidentLog | None = None,
    ) -> None:
        self.root = root if root is not None else default_cache_dir()
        self.version = version
        self.incidents = incidents if incidents is not None else IncidentLog()
        self.stats = {
            "hits": 0, "misses": 0, "stores": 0, "corrupt": 0,
        }

    # -- layout --------------------------------------------------------------

    def entry_dir(self, sha: str) -> str:
        return os.path.join(self.root, self.version, sha[:2], sha)

    def entry_path(self, sha: str, pass_name: str) -> str:
        return os.path.join(
            self.entry_dir(sha), _safe_component(pass_name) + ".bin"
        )

    # -- load / store --------------------------------------------------------

    def load(self, sha: str, pass_name: str) -> bytes | None:
        """The stored blob for this key, or ``None`` on miss.

        A corrupt or truncated entry counts as a miss: it is unlinked so
        the next store republishes a good copy, and the detection is
        recorded as a recovered ``cache-corrupt`` incident.
        """
        path = self.entry_path(sha, pass_name)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            self.stats["misses"] += 1
            return None
        body = self._verify(data)
        if body is None:
            self._evict_corrupt(path, sha, pass_name)
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return body

    def store(self, sha: str, pass_name: str, blob: bytes) -> str:
        """Publish ``blob`` under the key; returns the entry path.

        Write-to-temp plus :func:`os.replace` keeps concurrent writers
        safe: readers see either the old complete entry or the new one.
        """
        path = self.entry_path(sha, pass_name)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        digest = hashlib.sha256(blob).digest()
        tmp = os.path.join(
            directory, f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        )
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(digest)
            fh.write(blob)
        os.replace(tmp, path)
        self.stats["stores"] += 1
        return path

    # -- integrity -----------------------------------------------------------

    @staticmethod
    def _verify(data: bytes) -> bytes | None:
        """The body if the envelope checks out, else ``None``."""
        header_len = len(_MAGIC) + _DIGEST_LEN
        if len(data) < header_len or not data.startswith(_MAGIC):
            return None
        digest = data[len(_MAGIC):header_len]
        body = data[header_len:]
        if hashlib.sha256(body).digest() != digest:
            return None
        return body

    def _evict_corrupt(self, path: str, sha: str, pass_name: str) -> None:
        self.stats["corrupt"] += 1
        try:
            os.unlink(path)
        except OSError:
            pass  # a concurrent writer may have already replaced it
        self.incidents.record(
            "cache-corrupt",
            pass_name=pass_name,
            phase="serve-cache",
            fingerprint=sha,
            recovered=True,
        )

    # -- inspection (tests, stats op) ----------------------------------------

    def entries(self) -> list[tuple[str, str]]:
        """All ``(sha, entry file name)`` pairs currently on disk for
        this engine version, sorted."""
        base = os.path.join(self.root, self.version)
        found: list[tuple[str, str]] = []
        if not os.path.isdir(base):
            return found
        for prefix in sorted(os.listdir(base)):
            prefix_dir = os.path.join(base, prefix)
            if not os.path.isdir(prefix_dir):
                continue
            for sha in sorted(os.listdir(prefix_dir)):
                sha_dir = os.path.join(prefix_dir, sha)
                if not os.path.isdir(sha_dir):
                    continue
                for name in sorted(os.listdir(sha_dir)):
                    if name.endswith(".bin"):
                        found.append((sha, name))
        return found

    def as_dict(self) -> dict:
        return {"version": self.version, **self.stats}
