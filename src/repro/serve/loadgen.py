"""A deterministic load generator for the serve daemon.

Two layers:

* :func:`loadgen_schedule` is a *pure* function from a seed to a request
  schedule -- a hot/cold/edit mix over a corpus of seeded workload
  programs (80/20-style skew toward a small hot set, with an edit-session
  burst every ``edit_every``-th slot).  Byte-determinism of the schedule
  across ``PYTHONHASHSEED`` is pinned by
  ``tests/test_hash_determinism.py``.
* :func:`bench_serve_loadgen` is the ``serve-loadgen`` benchmark
  workload behind ``repro bench --serve`` and the CI smoke job: it
  starts a daemon on a private TCP port with a fresh cache directory,
  measures the cold one-shot answer for every program of the
  equivalence corpus, replays the same requests against the daemon cold
  (miss, populating the cache) and hot (warm LRU), verifies the warm
  responses are **byte-identical** to the one-shot answers, then runs
  the seeded mix and reports hit-rate, p50/p95 latency and QPS into
  ``BENCH_<tag>.json``.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable

from repro.serve.ops import run_op
from repro.serve.server import canonical_json

#: The seeded mix: mostly reads, skewed hot, with periodic edit bursts.
DEFAULT_REQUESTS = 160
DEFAULT_REQUESTS_SMOKE = 48
MIX_OPS = ("analyze", "constprop", "lint")


def loadgen_corpus(smoke: bool = False) -> list[tuple[str, str]]:
    """``(label, source)`` for every program of the equivalence corpus
    (204 programs; 24 in smoke mode), pretty-printed so the daemon and
    the one-shot twin see the exact same text."""
    from repro.lang.pretty import pretty_program
    from repro.perf.batch import equivalence_suite, resolve_family

    out = []
    for spec in equivalence_suite(smoke=smoke):
        program = resolve_family(spec["family"])(*spec["args"])
        out.append((spec["label"], pretty_program(program)))
    return out


def loadgen_schedule(
    seed: int = 11,
    requests: int = DEFAULT_REQUESTS,
    programs: int = 24,
    hot_set: int = 6,
    hot_fraction: float = 0.8,
    edit_every: int = 20,
) -> list[dict]:
    """The deterministic request schedule (no I/O, no clock, no daemon).

    Each entry is ``{"kind": "op", "op": ..., "program": i}`` or
    ``{"kind": "edit", "program": i}``; ``program`` indexes the corpus.
    """
    rng = random.Random(seed)
    hot = min(max(1, hot_set), programs)
    schedule: list[dict] = []
    for i in range(requests):
        if edit_every and (i + 1) % edit_every == 0:
            schedule.append({
                "kind": "edit", "program": rng.randrange(programs),
            })
            continue
        if rng.random() < hot_fraction:
            index = rng.randrange(hot)
        else:
            index = rng.randrange(programs)
        schedule.append({
            "kind": "op",
            "op": MIX_OPS[rng.randrange(len(MIX_OPS))],
            "program": index,
        })
    return schedule


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_loadgen(
    client,
    corpus: list[tuple[str, str]],
    schedule: list[dict],
    clock: Callable[[], float] = time.perf_counter,
) -> dict[str, Any]:
    """Replay ``schedule`` against a connected client; return mix stats.

    Every wire round-trip (edit bursts issue four) contributes one
    latency sample; ``hit_rate`` counts warm+disk over all source-op
    requests.
    """
    latencies: list[float] = []
    states = {"warm": 0, "disk": 0, "miss": 0}
    errors = 0
    edits = 0

    def timed(op: str, **params) -> dict:
        t0 = clock()
        response = client.request(op, **params)
        latencies.append((clock() - t0) * 1000.0)
        if not response.get("ok"):
            nonlocal errors
            errors += 1
        state = response.get("cache")
        if state in states:
            states[state] += 1
        return response

    t_start = clock()
    for i, entry in enumerate(schedule):
        label, source = corpus[entry["program"] % len(corpus)]
        if entry["kind"] == "op":
            timed(entry["op"], source=source, file=label)
            continue
        edits += 1
        name = f"loadgen-{i}"
        opened = timed("edit", action="open", session=name, source=source)
        node = None
        if opened.get("ok"):
            for statement in opened["result"]["statements"]:
                if statement["kind"] == "ASSIGN":
                    node = statement["id"]
                    break
        if node is not None:
            timed(
                "edit", action="rewrite", session=name,
                node=node, expr="7",
            )
            timed("edit", action="query", session=name)
        if opened.get("ok"):
            timed("edit", action="close", session=name)
    wall_ms = (clock() - t_start) * 1000.0

    lookups = sum(states.values())
    return {
        "requests": len(latencies),
        "errors": errors,
        "edit_bursts": edits,
        "warm": states["warm"],
        "disk": states["disk"],
        "miss": states["miss"],
        "hit_rate": round(
            (states["warm"] + states["disk"]) / lookups, 4
        ) if lookups else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p95_ms": round(_percentile(latencies, 0.95), 3),
        "wall_ms": round(wall_ms, 3),
        "qps": round(len(latencies) / (wall_ms / 1000.0), 1)
        if wall_ms else 0.0,
    }


def bench_serve_loadgen(
    smoke: bool = False,
    seed: int = 11,
    requests: int | None = None,
    cache_dir: str | None = None,
) -> dict[str, Any]:
    """The ``serve-loadgen`` benchmark workload.

    ``legacy_ms`` is the mean cold one-shot answer (parse + analyze, no
    daemon, no cache); ``fast_ms`` the mean warm daemon round-trip for
    the same requests.  ``identical`` asserts byte-identity between
    every warm response body and its one-shot twin across the whole
    corpus -- the serve stack's correctness gate.
    """
    import tempfile

    from repro.serve.client import ServeClient
    from repro.serve.server import ReproServer

    if requests is None:
        requests = DEFAULT_REQUESTS_SMOKE if smoke else DEFAULT_REQUESTS
    corpus = loadgen_corpus(smoke=smoke)
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-serve-bench-")

    # Cold one-shot twin: the daemon-free answer and its wall cost.
    oneshot_bytes: dict[str, bytes] = {}
    t0 = time.perf_counter()
    for label, source in corpus:
        oneshot_bytes[label] = canonical_json(run_op("analyze", source))
    oneshot_ms = (time.perf_counter() - t0) * 1000.0

    server = ReproServer(
        host="127.0.0.1", port=0, cache_dir=cache_dir,
        warm=len(corpus) + 8,
    )
    server.start_background()
    _, host, port = server.address
    try:
        with ServeClient(host=host, port=port) as client:
            # Pass 1 (cold): every request misses and populates the
            # cache; pass 2 (hot): every request is a warm LRU hit.
            t0 = time.perf_counter()
            for label, source in corpus:
                client.request("analyze", source=source, file=label)
            cold_ms = (time.perf_counter() - t0) * 1000.0

            identical = True
            t0 = time.perf_counter()
            for label, source in corpus:
                response = client.request(
                    "analyze", source=source, file=label
                )
                if (
                    response.get("cache") != "warm"
                    or canonical_json(response["result"])
                    != oneshot_bytes[label]
                ):
                    identical = False
            warm_ms = (time.perf_counter() - t0) * 1000.0

            mix = run_loadgen(
                client,
                corpus,
                loadgen_schedule(
                    seed=seed, requests=requests, programs=len(corpus)
                ),
            )
            stats = client.request("stats").get("result", {})
            client.request("shutdown")
    finally:
        server.join(timeout=10.0)

    n = len(corpus)
    row = {
        "size": str(n),
        "nodes": n,  # corpus programs, not CFG nodes: a request count
        "edges": requests,
        "legacy_ms": round(oneshot_ms / n, 3),
        "fast_ms": round(warm_ms / n, 3),
        "cold_daemon_ms": round(cold_ms / n, 3),
        "speedup": round(oneshot_ms / warm_ms, 2) if warm_ms else 0.0,
        "identical": identical,
    }
    return {
        "name": "serve-loadgen",
        "family": "equivalence_corpus",
        "rows": [row],
        "largest": row,
        "mix": mix,
        "daemon": {
            "cache": stats.get("cache", {}),
            "parses": stats.get("parses", 0),
            "requests": stats.get("requests", 0),
        },
    }
