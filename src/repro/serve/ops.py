"""The request vocabulary: op payload builders shared by daemon and CLI.

The acceptance contract of the serve subsystem is *byte identity*: a
daemon response must equal the one-shot answer for the same source.  The
only robust way to get that is to have exactly one implementation of
each answer, so both the daemon's request broker and the one-shot path
(``repro request`` without a server, the loadgen's expected side) call
:func:`run_op` -- a pure function from ``(op, source)`` to a
JSON-serializable payload with fully deterministic content (every
collection sorted, no wall-clock fields).

``OP_PASSES`` declares which registered passes each op consumes; the
daemon uses it to warm-start a cold manager from the cross-run cache
(import the pass blobs) and to publish freshly computed results back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cfg.builder import build_cfg
from repro.core.dfg import CTRL_VAR
from repro.lang.parser import parse_program
from repro.pipeline.manager import AnalysisManager
from repro.robust.errors import InputError
from repro.util.metrics import Metrics

if TYPE_CHECKING:
    from repro.cfg.graph import CFG

#: Protocol ops.  ``edit``, ``stats``, ``ping`` and ``shutdown`` are
#: daemon-only (stateful or lifecycle); the rest are pure functions of
#: the source and go through :func:`run_op` on both sides.
SOURCE_OPS = ("analyze", "constprop", "lint")
OPS = SOURCE_OPS + ("batch-sarif", "edit", "ping", "stats", "shutdown")

#: Registered passes each source op resolves -- the daemon's cache
#: import/export set.  ``lint`` runs its own rule registry and is cached
#: as an op-level document instead (see ``OP_BLOBS``).
OP_PASSES: dict[str, tuple[str, ...]] = {
    "analyze": ("sese", "dfg", "constprop", "arena"),
    "constprop": ("dfg", "constprop"),
    "lint": (),
}

#: Op-level cached documents: synthetic pass names for blobs that are
#: canonical JSON rather than exported pass results.
LINT_BLOB = "op:lint"
SARIF_BLOB = "op:sarif"

#: Default step budget per lint oracle refutation probe (the ``repro
#: lint`` CLI default).
DEFAULT_MAX_STEPS = 20_000


def analyze_payload(graph: "CFG", manager: AnalysisManager) -> dict:
    """The ``analyze`` answer: structure, dependence and constant
    counts -- the JSON twin of ``repro analyze``'s text report."""
    structure = manager.get("sese")
    dfg = manager.get("dfg")
    constants = manager.get("constprop")
    found = {
        key: value
        for key, value in constants.constant_uses().items()
        if key[1] != CTRL_VAR
    }
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "variables": len(graph.variables()),
        "cycle_classes": len(structure.classes),
        "sese_regions": len(structure.regions),
        "max_nesting": max(
            (r.depth for r in structure.regions), default=0
        ),
        "dfg_edges": dfg.size(),
        "dfg_data_edges": dfg.size(include_control=False),
        "multiedges": len(dfg.multiedges()),
        "constant_uses": {
            f"{node}:{var}": value
            for (node, var), value in sorted(found.items())
        },
        "dead_nodes": sorted(constants.dead_nodes),
    }


def constprop_payload(graph: "CFG", manager: AnalysisManager) -> dict:
    """The ``constprop`` answer: every compile-time constant use plus
    the unreachable statements, from the paper's DFG propagator."""
    constants = manager.get("constprop")
    return {
        "constants": {
            f"{node}:{var}": value
            for (node, var), value in sorted(
                constants.constant_uses().items()
            )
            if var != CTRL_VAR
        },
        "dead_nodes": sorted(constants.dead_nodes),
    }


def lint_document(
    graph: "CFG", max_steps: int = DEFAULT_MAX_STEPS
) -> tuple[dict, int]:
    """The canonical (label-free) ``repro.lint/1`` document plus the
    oracle-failure count.

    ``file`` is left empty so the document is a pure function of the
    source -- the daemon caches it under ``op:lint`` and each response
    re-labels a shallow copy with the request's path.
    """
    from repro.lint.engine import LintEngine
    from repro.lint.output import lint_payload

    result = LintEngine(graph).run(verify=True, max_steps=max_steps)
    return lint_payload("", result, 0), len(result.oracle_failures)


def sarif_document(
    label: str, graph: "CFG", max_steps: int = DEFAULT_MAX_STEPS
) -> dict:
    """The SARIF 2.1.0 answer for one document of a ``batch-sarif``
    request (labels are baked into SARIF locations, so the cache key
    covers label *and* source -- see the server's ``_doc_sha``)."""
    from repro.lint.engine import LintEngine
    from repro.lint.output import sarif_payload

    result = LintEngine(graph).run(verify=True, max_steps=max_steps)
    return sarif_payload(label, result.diagnostics)


def run_op(
    op: str,
    source: str,
    label: str = "",
    max_steps: int = DEFAULT_MAX_STEPS,
) -> dict:
    """The one-shot answer for a source op -- the daemon's byte-equality
    oracle.  Raises :class:`~repro.robust.errors.InputError` on an
    unknown op; parse errors propagate as
    :class:`~repro.lang.errors.LangError` (both map to the CLI's exit-2
    contract)."""
    if op not in SOURCE_OPS:
        known = ", ".join(SOURCE_OPS)
        raise InputError(
            f"unknown source op {op!r}; available: {known}",
            phase="serve-op",
        )
    graph = build_cfg(parse_program(source))
    if op == "lint":
        document, failures = lint_document(graph, max_steps=max_steps)
        if failures:
            from repro.robust.errors import AnalysisError

            raise AnalysisError(
                f"{failures} lint oracle check(s) raised",
                phase="lint-verify",
            )
        return dict(document, file=label)
    manager = AnalysisManager(graph, metrics=Metrics())
    if op == "analyze":
        return analyze_payload(graph, manager)
    return constprop_payload(graph, manager)
