"""The ``repro serve`` daemon: a line-delimited JSON request broker.

Protocol (schema ``repro.serve/1``): one JSON object per line, over a
Unix-domain socket or localhost TCP.  Requests carry ``{"id", "op",
...params}``; every response echoes the id::

    {"schema": "repro.serve/1", "id": 1, "op": "analyze", "ok": true,
     "cache": "warm", "result": {...}}
    {"schema": "repro.serve/1", "id": 2, "op": "analyze", "ok": false,
     "error": {"kind": "language", "message": "..."}}

A malformed line -- unparsable JSON, a non-object, an unknown op,
missing or mistyped params -- never kills the connection: it produces a
structured ``ok: false`` response whose ``error.kind`` maps onto the
one-shot CLI's exit-2 taxonomy (``input`` / ``language`` / ``analysis``
/ ``internal``).

Request handling is layered for reuse:

* the **warm tier** is an LRU of :class:`~repro.pipeline.manager.
  AnalysisManager` instances keyed by source SHA-256, each memoizing
  the op-level answers it has already served;
* the **disk tier** is the cross-run :class:`~repro.serve.cache.
  ResultCache`: a cold manager imports exported pass blobs instead of
  recomputing, and publishes whatever it had to compute;
* CPU-heavy ``batch-sarif`` misses fan out across a
  :class:`~repro.robust.pool.SupervisedPool` (per-doc timeout,
  crash isolation, quarantine) when the daemon is started with pool
  workers; the pool's clock/sleep are injectable so tests drive
  timeouts with a :class:`~repro.robust.watchdog.FakeClock`.

``edit`` requests thread :class:`~repro.regions.edits.EditSession`:
repeated edits to the same named document hit the dirty-spine
incremental path -- the daemon parses the document exactly once at
``open``.  **Aliasing discipline:** a session always parses its *own*
graph rather than borrowing the warm LRU's; sharing would let session
edits mutate a graph whose analysis results are still being served for
the original content hash (the regression tests in
``tests/test_serve_protocol.py`` pin this).

Shutdown is graceful: the ``shutdown`` response is flushed first, the
listener stops accepting, and every in-flight request completes before
the serve loop returns (handler threads are joined, draining).
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.cfg.builder import build_cfg
from repro.lang.errors import LangError
from repro.lang.parser import parse_expr, parse_program
from repro.pipeline.manager import AnalysisManager
from repro.robust.errors import InputError, ReproError
from repro.robust.incidents import IncidentLog
from repro.serve.cache import ResultCache, source_sha
from repro.serve.ops import (
    DEFAULT_MAX_STEPS,
    LINT_BLOB,
    OP_PASSES,
    OPS,
    SARIF_BLOB,
    analyze_payload,
    constprop_payload,
    lint_document,
)
from repro.util.counters import WorkCounter
from repro.util.metrics import Metrics

SERVE_SCHEMA = "repro.serve/1"

#: Handler read-poll interval: how quickly an idle connection notices a
#: pending shutdown.
_POLL_S = 0.2

#: Guard against a runaway client: one request line tops out at 32 MiB.
MAX_LINE_BYTES = 32 * 1024 * 1024


def canonical_json(payload: object) -> bytes:
    """The canonical wire form: sorted keys, no whitespace, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _require(obj: dict, field: str, kind: type, what: str = "request"):
    value = obj.get(field)
    if not isinstance(value, kind) or (kind is int and isinstance(value, bool)):
        raise InputError(
            f"{what} needs {field!r} of type {kind.__name__}",
            phase="serve-request",
        )
    return value


class _WarmEntry:
    """One warm document: its graph, manager and memoized op answers."""

    __slots__ = ("source", "graph", "manager", "ops")

    def __init__(self, source: str, graph, manager: AnalysisManager) -> None:
        self.source = source
        self.graph = graph
        self.manager = manager
        #: op name -> label-free answer payload
        self.ops: dict[str, dict] = {}


class RequestBroker:
    """Protocol-level request handling, independent of any socket.

    ``handle_line`` is the full request->response function; the socket
    layer only frames lines and moves bytes.  Tests exercise the broker
    both directly and end-to-end over real sockets.
    """

    def __init__(
        self,
        cache: ResultCache,
        warm: int = 32,
        pool_workers: int = 0,
        pool_timeout_s: float | None = 30.0,
        pool_retries: int = 1,
        max_steps: int = DEFAULT_MAX_STEPS,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        debug_ops: bool = False,
    ) -> None:
        self.cache = cache
        self.incidents: IncidentLog = cache.incidents
        self.warm = max(1, warm)
        self.pool_workers = pool_workers
        self.pool_timeout_s = pool_timeout_s
        self.pool_retries = pool_retries
        self.max_steps = max_steps
        self.debug_ops = debug_ops
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._managers: OrderedDict[str, _WarmEntry] = OrderedDict()
        self._sessions: dict[str, dict] = {}
        self.stopping = False
        self.stats = {
            "requests": 0,
            "errors": 0,
            "parses": 0,
            "warm_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "sessions_opened": 0,
            "pool_dispatches": 0,
        }
        self._by_op: dict[str, int] = {}

    # -- the protocol surface ------------------------------------------------

    def handle_line(self, line: bytes) -> dict:
        """One request line -> one response object (never raises)."""
        request_id = None
        op = None
        try:
            try:
                obj = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise InputError(
                    f"unparsable request line: {exc}", phase="serve-request"
                ) from None
            if not isinstance(obj, dict):
                raise InputError(
                    "request must be a JSON object", phase="serve-request"
                )
            request_id = obj.get("id")
            op = obj.get("op")
            with self._lock:
                self.stats["requests"] += 1
                if isinstance(op, str):
                    self._by_op[op] = self._by_op.get(op, 0) + 1
                result, cache_state = self._dispatch(op, obj)
            response = {
                "schema": SERVE_SCHEMA,
                "id": request_id,
                "op": op,
                "ok": True,
                "result": result,
            }
            if cache_state is not None:
                response["cache"] = cache_state
            return response
        except ReproError as exc:
            return self._error(request_id, op, exc.kind, str(exc))
        except LangError as exc:
            return self._error(request_id, op, "language", str(exc))
        except Exception as exc:  # the daemon must outlive any request
            return self._error(
                request_id, op, "internal",
                f"{type(exc).__name__}: {exc}",
            )

    def _error(self, request_id, op, kind: str, message: str) -> dict:
        self.stats["errors"] += 1
        return {
            "schema": SERVE_SCHEMA,
            "id": request_id,
            "op": op,
            "ok": False,
            "error": {"kind": kind, "message": message},
        }

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, op, obj: dict) -> tuple[dict, str | None]:
        if op == "ping":
            return {
                "pong": True,
                "protocol": SERVE_SCHEMA,
                "engine_version": self.cache.version,
            }, None
        if op == "stats":
            return self._stats_payload(), None
        if op == "shutdown":
            self.stopping = True
            return {"stopping": True}, None
        if op in ("analyze", "constprop", "lint"):
            return self._source_op(op, obj)
        if op == "batch-sarif":
            return self._batch_sarif(obj), None
        if op == "edit":
            return self._edit(obj), None
        if op == "debug-sleep" and self.debug_ops:
            time.sleep(float(obj.get("ms", 0)) / 1000.0)
            return {"slept_ms": obj.get("ms", 0)}, None
        known = ", ".join(OPS)
        raise InputError(
            f"unknown op {op!r}; available: {known}", phase="serve-request"
        )

    def _stats_payload(self) -> dict:
        return {
            **{key: self.stats[key] for key in sorted(self.stats)},
            "by_op": dict(sorted(self._by_op.items())),
            "cache": self.cache.as_dict(),
            "warm": {
                "size": len(self._managers),
                "capacity": self.warm,
            },
            "sessions_open": len(self._sessions),
            "incidents": len(self.incidents),
        }

    # -- warm tier -----------------------------------------------------------

    def _entry_for(self, source: str, sha: str) -> tuple[_WarmEntry, bool]:
        """The warm entry for ``sha``, creating (and LRU-evicting) as
        needed; returns ``(entry, created)``."""
        entry = self._managers.get(sha)
        if entry is not None:
            self._managers.move_to_end(sha)
            return entry, False
        self.stats["parses"] += 1
        graph = build_cfg(parse_program(source))
        manager = AnalysisManager(graph, metrics=Metrics())
        entry = _WarmEntry(source, graph, manager)
        self._managers[sha] = entry
        while len(self._managers) > self.warm:
            self._managers.popitem(last=False)
        return entry, True

    def _source_op(self, op: str, obj: dict) -> tuple[dict, str]:
        source = _require(obj, "source", str, f"op {op!r}")
        label = obj.get("file", "")
        if not isinstance(label, str):
            raise InputError(
                f"op {op!r} 'file' must be a string", phase="serve-request"
            )
        sha = source_sha(source)
        entry, _created = self._entry_for(source, sha)
        if op in entry.ops:
            state = "warm"
            document = entry.ops[op]
        elif op == "lint":
            document, state = self._lint_answer(entry, sha)
        else:
            document, state = self._pass_answer(op, entry, sha)
        self.stats[
            {"warm": "warm_hits", "disk": "disk_hits", "miss": "misses"}[state]
        ] += 1
        if op == "lint":
            return dict(document, file=label), state
        return document, state

    def _lint_answer(self, entry: _WarmEntry, sha: str) -> tuple[dict, str]:
        blob = self.cache.load(sha, LINT_BLOB)
        if blob is not None:
            document = json.loads(blob.decode("utf-8"))
            state = "disk"
        else:
            document, failures = lint_document(
                entry.graph, max_steps=self.max_steps
            )
            if failures:
                # Do not cache or memoize: the zero-false-positive
                # guarantee was not measured, which is the one-shot
                # CLI's exit-2 condition.
                from repro.robust.errors import AnalysisError

                raise AnalysisError(
                    f"{failures} lint oracle check(s) raised",
                    phase="lint-verify",
                )
            self.cache.store(sha, LINT_BLOB, canonical_json(document))
            state = "miss"
        entry.ops["lint"] = document
        return document, state

    def _pass_answer(
        self, op: str, entry: _WarmEntry, sha: str
    ) -> tuple[dict, str]:
        """Resolve ``op``'s pass set through the disk cache, then build
        the answer from the (now warm) manager."""
        manager = entry.manager
        loaded = computed = 0
        for name in OP_PASSES[op]:
            if manager.cached(name):
                continue
            blob = self.cache.load(sha, name)
            if blob is not None:
                manager.import_result(name, blob)
                loaded += 1
            else:
                manager.get(name)
                self.cache.store(sha, name, manager.export_result(name))
                computed += 1
        if op == "analyze":
            document = analyze_payload(entry.graph, manager)
        else:
            document = constprop_payload(entry.graph, manager)
        entry.ops[op] = document
        state = "miss" if computed else ("disk" if loaded else "warm")
        return document, state

    # -- batch-sarif ---------------------------------------------------------

    def _doc_sha(self, label: str, source: str) -> str:
        """SARIF bakes the label into every location, so the op-blob key
        covers label and source together."""
        return source_sha(f"{label}\x00{source}")

    def _batch_sarif(self, obj: dict) -> dict:
        docs = _require(obj, "docs", list, "op 'batch-sarif'")
        answers: dict[int, dict] = {}
        specs: list[dict] = []
        spec_index: list[int] = []
        for i, doc in enumerate(docs):
            if not isinstance(doc, dict) or not isinstance(
                doc.get("label"), str
            ):
                raise InputError(
                    "batch-sarif docs need a string 'label' plus 'source' "
                    "or 'family'+'args'",
                    phase="serve-request",
                )
            label = doc["label"]
            if isinstance(doc.get("source"), str):
                sha = self._doc_sha(label, doc["source"])
                blob = self.cache.load(sha, SARIF_BLOB)
                if blob is not None:
                    answers[i] = {
                        "label": label,
                        "cache": "disk",
                        "sarif": json.loads(blob.decode("utf-8")),
                    }
                    continue
                spec = {
                    "label": label, "source": doc["source"],
                    "lint": True, "sarif": True,
                }
            elif isinstance(doc.get("family"), str):
                spec = {
                    "label": label, "family": doc["family"],
                    "args": list(doc.get("args", ())),
                    "lint": True, "sarif": True,
                }
            else:
                raise InputError(
                    f"batch-sarif doc {label!r} needs 'source' or "
                    f"'family'+'args'",
                    phase="serve-request",
                )
            if "timeout_s" in doc:
                spec["timeout_s"] = doc["timeout_s"]
            specs.append(spec)
            spec_index.append(i)
        rows = self._run_specs(specs)
        for i, spec, row in zip(spec_index, specs, rows):
            label = spec["label"]
            if "error" in row:
                answers[i] = {
                    "label": label,
                    "error": row["error"],
                    "quarantined": bool(row.get("quarantined")),
                }
                continue
            sarif = row["sarif"]
            if "source" in spec:
                self.cache.store(
                    self._doc_sha(label, spec["source"]),
                    SARIF_BLOB,
                    canonical_json(sarif),
                )
            answers[i] = {"label": label, "cache": "miss", "sarif": sarif}
        return {"documents": [answers[i] for i in range(len(docs))]}

    def _run_specs(self, specs: list[dict]) -> list[dict]:
        """Cold batch docs: supervised pool when configured, else inline."""
        if not specs:
            return []
        from repro.perf.batch import _analyze_one

        if self.pool_workers > 0:
            from repro.robust.pool import SupervisedPool

            self.stats["pool_dispatches"] += len(specs)
            pool = SupervisedPool(
                self.pool_workers,
                timeout_s=self.pool_timeout_s,
                retries=self.pool_retries,
                incidents=self.incidents,
                clock=self._clock,
                sleep=self._sleep,
            )
            return pool.run(specs)
        return [_analyze_one(spec) for spec in specs]

    # -- edit sessions -------------------------------------------------------

    def _edit(self, obj: dict) -> dict:
        action = _require(obj, "action", str, "op 'edit'")
        name = _require(obj, "session", str, "op 'edit'")
        if action == "open":
            return self._edit_open(name, obj)
        state = self._sessions.get(name)
        if state is None:
            raise InputError(
                f"no open edit session {name!r}", phase="serve-edit"
            )
        session = state["session"]
        before = session.counter.snapshot()
        if action == "rewrite":
            node = _require(obj, "node", int, "edit rewrite")
            expr = parse_expr(_require(obj, "expr", str, "edit rewrite"))
            session.rewrite_rhs(node, expr)
            result: dict = {"edits": session.edits}
        elif action == "splice":
            edge = _require(obj, "edge", int, "edit splice")
            target = _require(obj, "target", str, "edit splice")
            expr = parse_expr(_require(obj, "expr", str, "edit splice"))
            nid, e1, e2 = session.splice_assign(edge, target, expr)
            result = {
                "edits": session.edits,
                "node": nid, "entry_edge": e1, "exit_edge": e2,
            }
        elif action == "unsplice":
            node = _require(obj, "node", int, "edit unsplice")
            merged = session.unsplice(node)
            result = {"edits": session.edits, "merged_edge": merged}
        elif action == "query":
            facts = session.solve_all()
            result = {
                "edits": session.edits,
                "facts": {
                    analysis: {
                        str(eid): sorted(str(v) for v in values)
                        for eid, values in sorted(decoded.items())
                    }
                    for analysis, decoded in sorted(facts.items())
                },
            }
        elif action == "close":
            del self._sessions[name]
            return {"closed": True, "edits": session.edits}
        else:
            raise InputError(
                f"unknown edit action {action!r}; available: open, "
                f"rewrite, splice, unsplice, query, close",
                phase="serve-edit",
            )
        result["session"] = name
        result["work"] = dict(sorted(session.counter.diff(before).items()))
        return result

    def _edit_open(self, name: str, obj: dict) -> dict:
        source = _require(obj, "source", str, "edit open")
        if name in self._sessions:
            raise InputError(
                f"edit session {name!r} is already open", phase="serve-edit"
            )
        # The one parse of this document's lifetime.  Deliberately a
        # fresh graph -- never the warm LRU's: session edits mutate the
        # graph in place, and the LRU's results must stay valid for the
        # original content hash (see module docstring).
        self.stats["parses"] += 1
        from repro.regions.edits import EditSession

        graph = build_cfg(parse_program(source))
        manager = AnalysisManager(graph, metrics=Metrics())
        session = EditSession(graph, manager=manager)
        self._sessions[name] = {"session": session, "sha": source_sha(source)}
        self.stats["sessions_opened"] += 1
        return {
            "session": name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "statements": session.statement_rows(),
            "edge_ids": sorted(graph.edges),
        }


# -- the socket layer --------------------------------------------------------


class _Handler(socketserver.BaseRequestHandler):
    """Frame request lines; all semantics live in the broker."""

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        broker: RequestBroker = self.server.broker  # type: ignore[attr-defined]
        sock = self.request
        sock.settimeout(_POLL_S)
        buffer = b""
        while not broker.stopping:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            if len(buffer) > MAX_LINE_BYTES:
                response = broker._error(
                    None, None, "input",
                    f"request line exceeds {MAX_LINE_BYTES} bytes",
                )
                self._send(sock, response)
                return
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if not line.strip():
                    continue
                response = broker.handle_line(line)
                if not self._send(sock, response):
                    return
                if (
                    response.get("ok")
                    and response.get("op") == "shutdown"
                ):
                    # Response is on the wire; now stop the accept loop.
                    # serve_forever runs in a different thread, so this
                    # cannot deadlock.
                    self.server.shutdown()
                    return

    @staticmethod
    def _send(sock, response: dict) -> bool:
        try:
            sock.sendall(canonical_json(response) + b"\n")
            return True
        except OSError:
            return False


class _TCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    daemon_threads = False  # server_close joins handlers: shutdown drains
    block_on_close = True
    allow_reuse_address = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _UnixServer(
        socketserver.ThreadingMixIn, socketserver.UnixStreamServer
    ):
        daemon_threads = False
        block_on_close = True
else:  # pragma: no cover - non-POSIX fallback
    _UnixServer = None  # type: ignore[assignment]


class ReproServer:
    """The daemon: a broker bound to a Unix or localhost TCP socket.

    ``serve_forever`` blocks until a ``shutdown`` request (or
    :meth:`shutdown` from another thread), then drains in-flight
    handlers and cleans up the socket.  Tests run it on a background
    thread via :meth:`start_background`.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: ResultCache | None = None,
        cache_dir: str | None = None,
        warm: int = 32,
        pool_workers: int = 0,
        pool_timeout_s: float | None = 30.0,
        max_steps: int = DEFAULT_MAX_STEPS,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        debug_ops: bool = False,
    ) -> None:
        if cache is None:
            cache = ResultCache(cache_dir)
        self.broker = RequestBroker(
            cache,
            warm=warm,
            pool_workers=pool_workers,
            pool_timeout_s=pool_timeout_s,
            max_steps=max_steps,
            clock=clock,
            sleep=sleep,
            debug_ops=debug_ops,
        )
        self.socket_path = socket_path
        if socket_path is not None:
            if _UnixServer is None:  # pragma: no cover
                raise InputError(
                    "unix sockets are unavailable on this platform; "
                    "use --tcp",
                    phase="serve-socket",
                )
            if os.path.exists(socket_path):
                os.unlink(socket_path)
            self._server = _UnixServer(socket_path, _Handler)
        else:
            self._server = _TCPServer((host, port), _Handler)
        self._server.broker = self.broker  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple:
        """``("unix", path)`` or ``("tcp", host, port)``."""
        if self.socket_path is not None:
            return ("unix", self.socket_path)
        host, port = self._server.server_address[:2]
        return ("tcp", host, port)

    def serve_forever(self) -> None:
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self.broker.stopping = True
            self._server.server_close()  # joins handler threads: drain
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass

    def start_background(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        self._thread = thread
        return thread

    def shutdown(self) -> None:
        """Stop from outside a request (SIGINT path); drains like a
        ``shutdown`` request."""
        self.broker.stopping = True
        self._server.shutdown()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
