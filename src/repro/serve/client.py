"""The ``repro request`` side: a line-delimited JSON protocol client.

:class:`ServeClient` speaks ``repro.serve/1`` over the same two
transports the daemon binds (Unix-domain socket or localhost TCP),
pipelining any number of requests over one connection.  Responses are
matched to requests by ``id``; a read deadline turns a silent daemon
into a structured :class:`~repro.robust.errors.InputError` instead of a
hang.

The module also owns the **offline twin**: :func:`one_shot` answers the
pure source ops without any daemon by calling the same
:func:`~repro.serve.ops.run_op` the server uses -- this is the
byte-equality oracle the loadgen and the CI smoke job compare against.
"""

from __future__ import annotations

import json
import socket

from repro.robust.errors import InputError
from repro.serve.ops import run_op


class ServeClient:
    """One connection to a running ``repro serve`` daemon.

    Usable as a context manager; ``request`` sends one op and blocks for
    its response (the daemon serializes per-connection responses in
    request order).
    """

    def __init__(
        self,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 30.0,
    ) -> None:
        self.timeout_s = timeout_s
        try:
            if socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout_s)
                self._sock.connect(socket_path)
            else:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout_s
                )
        except OSError as exc:
            where = socket_path if socket_path is not None else f"{host}:{port}"
            raise InputError(
                f"cannot connect to repro daemon at {where}: {exc}",
                phase="serve-client",
            ) from None
        self._buffer = b""
        self._next_id = 0

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- protocol ------------------------------------------------------------

    def request(self, op: str, **params) -> dict:
        """Send one request; return the full response object."""
        self._next_id += 1
        request = {"id": self._next_id, "op": op, **params}
        line = json.dumps(
            request, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        try:
            self._sock.sendall(line + b"\n")
        except OSError as exc:
            raise InputError(
                f"daemon connection lost while sending: {exc}",
                phase="serve-client",
            ) from None
        return self._read_response(self._next_id)

    def _read_response(self, request_id: int) -> dict:
        while True:
            while b"\n" not in self._buffer:
                try:
                    chunk = self._sock.recv(65536)
                except socket.timeout:
                    raise InputError(
                        f"daemon did not respond within {self.timeout_s}s",
                        phase="serve-client",
                    ) from None
                except OSError as exc:
                    raise InputError(
                        f"daemon connection lost: {exc}", phase="serve-client"
                    ) from None
                if not chunk:
                    raise InputError(
                        "daemon closed the connection before responding",
                        phase="serve-client",
                    )
                self._buffer += chunk
            line, self._buffer = self._buffer.split(b"\n", 1)
            if not line.strip():
                continue
            response = json.loads(line.decode("utf-8"))
            if response.get("id") == request_id:
                return response
            # A response to an older pipelined request: drop it.

    # -- conveniences --------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def shutdown(self) -> dict:
        return self.request("shutdown")


def raise_for_error(response: dict) -> dict:
    """The ``result`` of an ok response; a daemon-reported error becomes
    the matching local exception class so the CLI's exit-2 taxonomy
    applies unchanged."""
    if response.get("ok"):
        return response.get("result", {})
    error = response.get("error") or {}
    kind = error.get("kind", "internal")
    message = error.get("message", "daemon error")
    from repro.robust.errors import AnalysisError, ReproError

    if kind in ("analysis", "timeout"):
        raise AnalysisError(message, phase="serve-remote")
    if kind in ("input", "language"):
        raise InputError(message, phase="serve-remote")
    raise ReproError(message, phase="serve-remote")


def one_shot(op: str, source: str, label: str = "") -> dict:
    """The daemon-free answer for a source op (the byte-equality twin of
    a warm daemon response's ``result``)."""
    return run_op(op, source, label=label)
