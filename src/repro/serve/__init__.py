"""Analysis as a service: daemon, client, content-addressed result cache.

One-shot ``repro`` invocations recompute every pass from scratch; this
package turns the pipeline into something that can serve interactive
lint-on-save and batch traffic:

* :mod:`repro.serve.cache` -- a content-addressed, cross-run store:
  exported pass results keyed ``(source_sha256, pass_name,
  engine_version)``, written atomically so concurrent writers (several
  daemons, a CI fleet) share one directory safely;
* :mod:`repro.serve.ops` -- the request vocabulary (``analyze``,
  ``constprop``, ``lint``, ``batch-sarif``, ``edit``, ...) as pure
  payload builders used by *both* the daemon and the one-shot CLI, so a
  daemon answer is byte-identical to its one-shot equivalent;
* :mod:`repro.serve.server` -- the ``repro.serve/1`` line-delimited JSON
  protocol over a Unix or localhost TCP socket, backed by an LRU of warm
  :class:`~repro.pipeline.manager.AnalysisManager` instances and
  long-lived :class:`~repro.regions.edits.EditSession` documents;
* :mod:`repro.serve.client` -- the socket client behind ``repro request``;
* :mod:`repro.serve.loadgen` -- the deterministic ``serve-loadgen``
  bench workload (seeded hot/cold/edit mix; hit-rate, p50/p95, QPS).
"""

from repro.serve.cache import ENGINE_VERSION, ResultCache, cache_key_bytes, source_sha
from repro.serve.client import ServeClient
from repro.serve.ops import run_op
from repro.serve.server import ReproServer

__all__ = [
    "ENGINE_VERSION",
    "ReproServer",
    "ResultCache",
    "ServeClient",
    "cache_key_bytes",
    "run_op",
    "source_sha",
]
