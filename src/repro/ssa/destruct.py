"""Out-of-SSA: turn an :class:`~repro.ssa.ssagraph.SSAForm` back into an
executable CFG.

Every SSA name becomes an ordinary variable; phi-functions become
*parallel copies* on the merge's incoming edges, sequentialized with the
classic cycle-breaking algorithm (a lost-copy/swap-safe ordering using a
temporary when the copies permute each other's sources).

The destructed graph computes the same outputs as the original program,
which gives the test suite a semantic round-trip check on *both* SSA
constructions: original == destruct(cytron(g)) == destruct(from_dfg(g))
on every input.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.lang.ast_nodes import BinOp, Expr, Index, IntLit, UnOp, Update, Var
from repro.ssa.ssagraph import SSAForm


def _rename_expr(expr: Expr, mapping: dict[str, str]) -> Expr:
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, IntLit):
        return expr
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rename_expr(expr.operand, mapping))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rename_expr(expr.left, mapping),
            _rename_expr(expr.right, mapping),
        )
    if isinstance(expr, Index):
        return Index(
            mapping.get(expr.array, expr.array),
            _rename_expr(expr.index, mapping),
        )
    if isinstance(expr, Update):
        return Update(
            mapping.get(expr.array, expr.array),
            _rename_expr(expr.index, mapping),
            _rename_expr(expr.value, mapping),
        )
    raise TypeError(f"not an expression: {expr!r}")


def sequentialize_parallel_copies(
    copies: dict[str, str], fresh_temp
) -> list[tuple[str, str]]:
    """Order ``{dst: src}`` parallel copies so no destination is
    overwritten before it is read; permutation cycles are broken by
    saving one value in a fresh temporary.

    >>> sequentialize_parallel_copies({"a": "b", "b": "a"}, lambda: "t")
    [('t', 'a'), ('a', 'b'), ('b', 't')]
    """
    pending = {d: s for d, s in copies.items() if d != s}
    ordered: list[tuple[str, str]] = []
    while pending:
        sources = set(pending.values())
        ready = [d for d in pending if d not in sources]
        if ready:
            for d in sorted(ready):
                ordered.append((d, pending.pop(d)))
            continue
        # Every destination is also a source: a permutation cycle.
        d = sorted(pending)[0]
        temp = fresh_temp()
        ordered.append((temp, d))
        for k, v in list(pending.items()):
            if v == d:
                pending[k] = temp
    return ordered


def destruct_ssa(ssa: SSAForm) -> CFG:
    """Produce an executable CFG equivalent to the SSA form.

    Entry values keep their original variable names (so the initial
    environment binds them); phi-functions lower to sequentialized copy
    blocks spliced on the merge in-edges; all other names become plain
    variables.
    """
    graph = ssa.graph.copy()
    temp_counter = [0]

    def fresh_temp() -> str:
        temp_counter[0] += 1
        return f"@swap{temp_counter[0]}"

    # Entry names read the original variables directly.
    entry_alias = {name: var for var, name in ssa.entry_names.items()}

    def resolve(name: str) -> str:
        return entry_alias.get(name, name)

    # Rewrite statement expressions and targets.
    for node in graph.nodes.values():
        if node.expr is not None:
            mapping = {
                var: resolve(ssa.use_names[(node.id, var)])
                for var in node.uses()
                if (node.id, var) in ssa.use_names
            }
            node.expr = _rename_expr(node.expr, mapping)
        if node.kind is NodeKind.ASSIGN and node.id in ssa.def_names:
            node.target = ssa.def_names[node.id]
    # Renaming rewrites targets as well as operands, so shape-derived
    # caches (SESE defs) are stale too.
    graph.note_rewrite(structural=True)

    # Lower phi-functions to parallel copies on each in-edge.
    for merge_id, by_var in ssa.phis.items():
        for edge in list(graph.in_edges(merge_id)):
            copies = {
                phi.result: resolve(phi.args[edge.id])
                for phi in by_var.values()
            }
            ordered = sequentialize_parallel_copies(copies, fresh_temp)
            if not ordered:
                continue
            src_node, label = edge.src, edge.label
            graph.remove_edge(edge.id)
            current = src_node
            for dst, src in ordered:
                copy = graph.add_node(
                    NodeKind.ASSIGN, target=dst, expr=Var(src)
                )
                graph.add_edge(current, copy, label=label)
                label = None
                current = copy
            graph.add_edge(current, merge_id)
    graph.validate(normalized=True)
    return graph
