"""Standard SSA construction (Cytron, Ferrante, Rosen, Wegman, Zadeck).

Phi-functions are placed on the iterated dominance frontier of each
variable's definition sites (``start`` counts as a definition site of
every variable's entry value), then names are assigned by a renaming walk
over the dominator tree.  With ``pruned=True`` a phi is placed only where
its variable is live -- pruned SSA -- which is the form the paper's
DFG-derived construction produces (dead dependence edges are removed, so
merges that feed no use never become phis).

Since the sparse framework landed (ROADMAP item 4), the construction is
an *instantiation* of the parameterized live-range-splitting engine:
:func:`build_ssa_cytron` runs :func:`repro.sparse.engine.build_sparse_form`
with the no-split :class:`~repro.sparse.engine.SSAStrategy` and projects
the result onto the classic overlay.  The historical self-contained
implementation survives as :func:`build_ssa_cytron_reference`; the two
are byte-identical across the corpus (``tests/test_sparse_framework.py``).
"""

from __future__ import annotations

from collections import defaultdict

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.liveness import live_variables
from repro.graphs.dominance import cfg_dominators
from repro.graphs.frontier import dominance_frontiers, iterated_frontier
from repro.ssa.ssagraph import Phi, SSAForm
from repro.util.counters import WorkCounter


def build_ssa_cytron(
    graph: CFG,
    pruned: bool = False,
    counter: WorkCounter | None = None,
) -> SSAForm:
    """Construct (minimal or pruned) SSA form for ``graph``."""
    from repro.sparse.engine import SSAStrategy, build_sparse_form

    counter = counter if counter is not None else WorkCounter()
    live = live_variables(graph) if pruned else None
    form = build_sparse_form(
        graph, SSAStrategy(), counter=counter, prune_live=live
    )
    return form.to_ssa()


def build_ssa_cytron_reference(
    graph: CFG,
    pruned: bool = False,
    counter: WorkCounter | None = None,
) -> SSAForm:
    """The historical dense construction, kept as the byte-identity
    oracle for the sparse engine's :class:`SSAStrategy` instantiation."""
    counter = counter if counter is not None else WorkCounter()
    dom = cfg_dominators(graph)
    frontier = dominance_frontiers(dom, graph.preds)
    counter.tick("frontier_entries", sum(len(s) for s in frontier.values()))
    live = live_variables(graph) if pruned else None

    ssa = SSAForm(graph)
    def_sites: dict[str, set[int]] = defaultdict(set)
    for node in graph.assign_nodes():
        assert node.target is not None
        def_sites[node.target].add(node.id)
    for var in sorted(graph.variables()):
        def_sites[var].add(graph.start)

    # -- phi placement ------------------------------------------------------
    for var, sites in def_sites.items():
        for nid in iterated_frontier(frontier, sites):
            counter.tick("phi_candidates")
            if graph.node(nid).kind is not NodeKind.MERGE:
                # All joins are merges in normalized form; anything else
                # (e.g. END with one in-edge) cannot need a phi.
                continue
            if live is not None:
                out_edge = graph.out_edge(nid)
                if var not in live[out_edge.id]:
                    continue  # pruned: dead here, no phi
            ssa.phis.setdefault(nid, {})[var] = Phi(var, nid, result="")

    # -- renaming -------------------------------------------------------------
    stacks: dict[str, list[str]] = defaultdict(list)
    version: dict[str, int] = defaultdict(int)

    def fresh(var: str) -> str:
        name = f"{var}.{version[var]}"
        version[var] += 1
        return name

    for var in sorted(graph.variables()):
        name = fresh(var)
        ssa.entry_names[var] = name
        stacks[var].append(name)

    dom_children = {nid: [] for nid in graph.nodes}
    for nid in graph.nodes:
        parent = dom.idom_of(nid) if nid != graph.start else None
        if parent is not None:
            dom_children[parent].append(nid)

    # Explicit-stack walk of the dominator tree: a frame with
    # ``pushed is None`` is a node entry, one with the list is its exit
    # (pop the names its subtree no longer sees).  No recursion, so
    # arbitrarily deep graphs rename without touching the interpreter's
    # recursion limit.
    stack: list[tuple[int, list[str] | None]] = [(graph.start, None)]
    while stack:
        nid, pushed = stack.pop()
        if pushed is not None:
            for var in reversed(pushed):
                stacks[var].pop()
            continue
        node = graph.node(nid)
        pushed = []
        if nid in ssa.phis:
            for var, phi in ssa.phis[nid].items():
                phi.result = fresh(var)
                stacks[var].append(phi.result)
                pushed.append(var)
        for var in sorted(node.uses()):
            counter.tick("use_renames")
            ssa.use_names[(nid, var)] = stacks[var][-1]
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            name = fresh(node.target)
            ssa.def_names[nid] = name
            stacks[node.target].append(name)
            pushed.append(node.target)
        for edge in graph.out_edges(nid):
            succ = edge.dst
            if succ in ssa.phis:
                for var, phi in ssa.phis[succ].items():
                    phi.args[edge.id] = stacks[var][-1]
        stack.append((nid, pushed))
        for child in reversed(dom_children[nid]):
            stack.append((child, None))

    ssa.validate()
    return ssa
