"""Standard SSA construction (Cytron, Ferrante, Rosen, Wegman, Zadeck).

Phi-functions are placed on the iterated dominance frontier of each
variable's definition sites (``start`` counts as a definition site of
every variable's entry value), then names are assigned by a renaming walk
over the dominator tree.  With ``pruned=True`` a phi is placed only where
its variable is live -- pruned SSA -- which is the form the paper's
DFG-derived construction produces (dead dependence edges are removed, so
merges that feed no use never become phis).
"""

from __future__ import annotations

from collections import defaultdict

from repro.cfg.graph import CFG, NodeKind
from repro.dataflow.liveness import live_variables
from repro.graphs.dominance import cfg_dominators
from repro.graphs.frontier import dominance_frontiers, iterated_frontier
from repro.ssa.ssagraph import Phi, SSAForm
from repro.util.counters import WorkCounter


def build_ssa_cytron(
    graph: CFG,
    pruned: bool = False,
    counter: WorkCounter | None = None,
) -> SSAForm:
    """Construct (minimal or pruned) SSA form for ``graph``."""
    counter = counter if counter is not None else WorkCounter()
    dom = cfg_dominators(graph)
    frontier = dominance_frontiers(dom, graph.preds)
    counter.tick("frontier_entries", sum(len(s) for s in frontier.values()))
    live = live_variables(graph) if pruned else None

    ssa = SSAForm(graph)
    def_sites: dict[str, set[int]] = defaultdict(set)
    for node in graph.assign_nodes():
        assert node.target is not None
        def_sites[node.target].add(node.id)
    for var in graph.variables():
        def_sites[var].add(graph.start)

    # -- phi placement ------------------------------------------------------
    for var, sites in def_sites.items():
        for nid in iterated_frontier(frontier, sites):
            counter.tick("phi_candidates")
            if graph.node(nid).kind is not NodeKind.MERGE:
                # All joins are merges in normalized form; anything else
                # (e.g. END with one in-edge) cannot need a phi.
                continue
            if live is not None:
                out_edge = graph.out_edge(nid)
                if var not in live[out_edge.id]:
                    continue  # pruned: dead here, no phi
            ssa.phis.setdefault(nid, {})[var] = Phi(var, nid, result="")

    # -- renaming -------------------------------------------------------------
    stacks: dict[str, list[str]] = defaultdict(list)
    version: dict[str, int] = defaultdict(int)

    def fresh(var: str) -> str:
        name = f"{var}.{version[var]}"
        version[var] += 1
        return name

    for var in graph.variables():
        name = fresh(var)
        ssa.entry_names[var] = name
        stacks[var].append(name)

    dom_children = {nid: [] for nid in graph.nodes}
    for nid in graph.nodes:
        parent = dom.idom_of(nid) if nid != graph.start else None
        if parent is not None:
            dom_children[parent].append(nid)

    def visit(nid: int) -> None:
        node = graph.node(nid)
        pushed: list[str] = []
        if nid in ssa.phis:
            for var, phi in ssa.phis[nid].items():
                phi.result = fresh(var)
                stacks[var].append(phi.result)
                pushed.append(var)
        for var in node.uses():
            counter.tick("use_renames")
            ssa.use_names[(nid, var)] = stacks[var][-1]
        if node.kind is NodeKind.ASSIGN:
            assert node.target is not None
            name = fresh(node.target)
            ssa.def_names[nid] = name
            stacks[node.target].append(name)
            pushed.append(node.target)
        for edge in graph.out_edges(nid):
            succ = edge.dst
            if succ in ssa.phis:
                for var, phi in ssa.phis[succ].items():
                    phi.args[edge.id] = stacks[var][-1]
        for child in dom_children[nid]:
            visit(child)
        for var in reversed(pushed):
            stacks[var].pop()

    # Iterative driver to avoid Python recursion limits on deep graphs.
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * graph.num_nodes + 100))
    try:
        visit(graph.start)
    finally:
        sys.setrecursionlimit(old_limit)

    ssa.validate()
    return ssa
