"""SSA construction from the dependence flow graph (Section 3.3).

"If the SSA representation of a program is desired, we can construct it
in O(EV) time by first building the DFG representation and then eliding
switches and converting merges to phi-functions.  Unlike the standard
algorithm, our algorithm does not require computation of the dominance
relation or dominance frontiers."

Concretely: a DFG merge operator for variable ``x`` becomes a
phi-function for ``x`` at that merge node.  A use's SSA name is found by
chasing its dependence edge backwards through (elided) switch operators
to the producing assignment, phi, or ``start``.  Because dead dependence
edges were removed during DFG construction, the result is *pruned* SSA --
the form :func:`repro.ssa.cytron.build_ssa_cytron` produces with
``pruned=True``, which is what the equivalence test (experiment C3)
compares against.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.core.build import build_dfg
from repro.core.dfg import CTRL_VAR, DFG, Port, PortKind
from repro.ssa.ssagraph import Phi, SSAForm
from repro.util.counters import WorkCounter


def build_ssa_from_dfg(
    graph: CFG,
    dfg: DFG | None = None,
    counter: WorkCounter | None = None,
) -> SSAForm:
    """Derive pruned SSA form from the DFG of ``graph``."""
    counter = counter if counter is not None else WorkCounter()
    dfg = dfg if dfg is not None else build_dfg(graph, counter=counter)
    ssa = SSAForm(graph)

    version: dict[str, int] = {}

    def fresh(var: str) -> str:
        n = version.get(var, 0)
        version[var] = n + 1
        return f"{var}.{n}"

    # Producers: entry values, assignment definitions, merge operators.
    port_name: dict[Port, str] = {}
    for var in sorted(graph.variables()):
        ssa.entry_names[var] = fresh(var)

    def producer_name(port: Port) -> str:
        """The SSA name carried by a dependence source port, eliding
        switch operators (Section 3.3)."""
        while True:
            counter.tick("ssa_port_walks")
            if port in port_name:
                return port_name[port]
            if port.kind is PortKind.DEF:
                name = fresh(port.var)
                port_name[port] = name
                ssa.def_names[port.node] = name
                return name
            if port.kind is PortKind.ENTRY:
                return ssa.entry_names[port.var]
            if port.kind is PortKind.MERGE:
                name = fresh(port.var)
                port_name[port] = name
                return name
            if port.kind is PortKind.SWITCH:
                # Elide the switch: its value is its input's value.
                port = dfg.switch_input(port)
                continue
            raise AssertionError(f"unexpected producer {port!r}")

    # Uses (the dummy control variable has no SSA identity).
    for (nid, var), source in dfg.use_sources.items():
        if var == CTRL_VAR:
            continue
        ssa.use_names[(nid, var)] = producer_name(source)

    # Merges become phi-functions.
    for port, inputs in dfg.merge_inputs.items():
        if port.var == CTRL_VAR:
            continue
        if graph.node(port.node).kind is not NodeKind.MERGE:
            continue
        phi = Phi(port.var, port.node, producer_name(port))
        for eid, src in inputs.items():
            phi.args[eid] = producer_name(src)
        ssa.phis.setdefault(port.node, {})[port.var] = phi

    _remove_trivial_phis(ssa)
    _remove_redundant_phi_cycles(ssa)
    ssa.validate()
    return ssa


def _remove_trivial_phis(ssa: SSAForm) -> None:
    """Simplify phis whose arguments are all one value (or themselves).

    The dependence web intercepts a variable at every merge its value
    flows through -- including loop headers the variable crosses
    unchanged -- so eliding merges yields some degenerate phi-functions
    ``x1 = phi(x0, x1)``.  Minimal/pruned SSA has none, so they are
    folded away (removing one can make another trivial; iterate).
    """
    replacement: dict[str, str] = {}

    def resolve(name: str) -> str:
        while name in replacement:
            name = replacement[name]
        return name

    changed = True
    while changed:
        changed = False
        for nid, by_var in list(ssa.phis.items()):
            for var, phi in list(by_var.items()):
                operands = {resolve(a) for a in phi.args.values()}
                operands.discard(phi.result)
                if len(operands) == 1:
                    replacement[phi.result] = operands.pop()
                    del by_var[var]
                    if not by_var:
                        del ssa.phis[nid]
                    changed = True

    ssa.use_names = {k: resolve(v) for k, v in ssa.use_names.items()}
    for phi in ssa.all_phis():
        phi.args = {eid: resolve(a) for eid, a in phi.args.items()}


def _remove_redundant_phi_cycles(ssa: SSAForm) -> None:
    """Remove strongly connected groups of phis fed by one outside value.

    Local trivial-phi folding misses *cycles* of mutually-referential
    phis -- ``p1 = phi(x0, p2); p2 = phi(x0, p1)`` -- which the dependence
    web produces on irreducible graphs (a variable crossing two entries
    of a shared loop is intercepted at both header merges).  Following
    Braun et al.'s simple-SSA observation: any strongly connected set of
    phi-functions whose arguments outside the set resolve to a single
    value is equivalent to that value.  SCCs are processed in
    condensation (reverse topological) order so inner replacements expose
    outer ones; a final trivial-phi pass folds anything newly local.
    """
    changed = True
    while changed:
        changed = False
        phis = {phi.result: phi for phi in ssa.all_phis()}
        graph = {
            name: sorted(
                {arg for arg in phi.args.values() if arg in phis}
            )
            for name, phi in phis.items()
        }
        replacement: dict[str, str] = {}
        for scc in _tarjan_sccs(graph):
            external = set()
            for name in scc:
                for arg in phis[name].args.values():
                    if arg not in scc:
                        external.add(replacement.get(arg, arg))
            if len(external) == 1:
                value = external.pop()
                for name in scc:
                    if name != value:
                        replacement[name] = value
        if not replacement:
            return

        def resolve(name: str) -> str:
            while name in replacement:
                name = replacement[name]
            return name

        for nid, by_var in list(ssa.phis.items()):
            for var, phi in list(by_var.items()):
                if phi.result in replacement:
                    del by_var[var]
                    changed = True
            if not by_var:
                del ssa.phis[nid]
        ssa.use_names = {k: resolve(v) for k, v in ssa.use_names.items()}
        for phi in ssa.all_phis():
            phi.args = {eid: resolve(a) for eid, a in phi.args.items()}
        _remove_trivial_phis(ssa)


def _tarjan_sccs(graph: dict[str, set[str]]) -> list[set[str]]:
    """Strongly connected components, emitted in reverse topological
    order (every edge leaving an SCC points to an earlier-emitted one)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.add(member)
                        if member == node:
                            break
                    sccs.append(scc)

    for name in graph:
        if name not in index:
            strongconnect(name)
    return sccs
