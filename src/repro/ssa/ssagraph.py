"""The SSA data structure: names, phi-functions, and factored def-use.

We keep SSA as an overlay on the CFG (names attached to existing def/use
sites plus phi-functions at merges) rather than rewriting node
expressions; every algorithm that needs the renamed program works through
the overlay.  This keeps one CFG shared by all representations under
comparison, which is what the size and agreement experiments need.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cfg.graph import CFG


@dataclass
class Phi:
    """A phi-function for ``var`` at merge node ``node``.

    ``args`` maps each incoming CFG edge id to the SSA name flowing in
    along it; ``result`` is the name the phi defines.
    """

    var: str
    node: int
    result: str
    args: dict[int, str] = field(default_factory=dict)


@dataclass
class SSAForm:
    """SSA overlay over a CFG.

    * ``def_names[node]`` -- name defined by an assignment node;
    * ``use_names[(node, var)]`` -- name consumed by a use site;
    * ``phis[node][var]`` -- phi-functions, keyed by merge node then
      variable;
    * ``entry_names[var]`` -- the name of the variable's value at
      ``start``.
    """

    graph: CFG
    def_names: dict[int, str] = field(default_factory=dict)
    use_names: dict[tuple[int, str], str] = field(default_factory=dict)
    phis: dict[int, dict[str, Phi]] = field(default_factory=dict)
    entry_names: dict[str, str] = field(default_factory=dict)

    # -- derived views -------------------------------------------------------

    def all_phis(self) -> list[Phi]:
        return [p for by_var in self.phis.values() for p in by_var.values()]

    def phi_placement(self) -> frozenset[tuple[int, str]]:
        """The (merge node, variable) pairs carrying a phi -- the object
        compared between the Cytron and DFG-derived constructions."""
        return frozenset(
            (nid, var) for nid, by_var in self.phis.items() for var in by_var
        )

    def definers(self) -> dict[str, tuple[str, int]]:
        """name -> ("assign"|"phi"|"entry", node id)."""
        where: dict[str, tuple[str, int]] = {}
        for nid, name in self.def_names.items():
            where[name] = ("assign", nid)
        for phi in self.all_phis():
            where[phi.result] = ("phi", phi.node)
        for name in self.entry_names.values():
            where[name] = ("entry", self.graph.start)
        return where

    def uses_of(self) -> dict[str, list[tuple[str, object]]]:
        """name -> list of use sites: ("use", (node, var)) or
        ("phi", (phi, in-edge id))."""
        sites: dict[str, list[tuple[str, object]]] = defaultdict(list)
        for (nid, var), name in self.use_names.items():
            sites[name].append(("use", (nid, var)))
        for phi in self.all_phis():
            for eid, name in phi.args.items():
                sites[name].append(("phi", (phi, eid)))
        return dict(sites)

    def size(self) -> int:
        """The representation-size measure for experiment F1: one SSA edge
        per use of a name (ordinary uses plus phi arguments), plus the phi
        functions themselves."""
        phi_args = sum(len(p.args) for p in self.all_phis())
        return len(self.use_names) + phi_args + len(self.all_phis())

    def validate(self) -> None:
        """Structural sanity: every used name has exactly one definer, and
        phi args cover exactly the in-edges of their merge."""
        defined = self.definers()
        for (nid, var), name in self.use_names.items():
            if name not in defined:
                raise ValueError(f"use of undefined SSA name {name!r}")
        for phi in self.all_phis():
            in_edges = {e.id for e in self.graph.in_edges(phi.node)}
            if set(phi.args) != in_edges:
                raise ValueError(
                    f"phi at {phi.node} args {set(phi.args)} != in-edges "
                    f"{in_edges}"
                )
            for name in phi.args.values():
                if name not in defined:
                    raise ValueError(
                        f"phi argument uses undefined name {name!r}"
                    )
