"""Sparse conditional constant propagation (Wegman & Zadeck) on SSA.

The SSA-world algorithm that finds *possible-paths* constants, included
as the third point of comparison for Section 4: def-use chains find
all-paths constants only; the CFG vector algorithm and the paper's DFG
algorithm both find possible-paths constants; SCCP shows the
sparse-but-SSA route to the same precision.

Classic two-worklist formulation: CFG edges become *executable* as
switches fold; phi-functions join only over executable in-edges; SSA
def-use edges propagate value changes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cfg.graph import NodeKind
from repro.dataflow.lattice import (
    BOTTOM,
    TOP,
    ConstValue,
    eval_abstract,
    join_all,
    join_const,
    truthiness,
)
from repro.ssa.ssagraph import SSAForm
from repro.util.counters import WorkCounter


@dataclass
class SCCPResult:
    """Values per SSA name plus the executability facts."""

    values: dict[str, ConstValue] = field(default_factory=dict)
    executable_edges: set[int] = field(default_factory=set)
    executable_nodes: set[int] = field(default_factory=set)

    def value_of_use(self, ssa: SSAForm, node: int, var: str) -> ConstValue:
        """Lattice value of the original-program use site."""
        if node not in self.executable_nodes:
            return BOTTOM
        return self.values.get(ssa.use_names[(node, var)], BOTTOM)

    def constant_names(self) -> dict[str, int]:
        return {
            k: v
            for k, v in self.values.items()
            if v is not TOP and v is not BOTTOM
        }


def sparse_conditional_constant_propagation(
    ssa: SSAForm, counter: WorkCounter | None = None
) -> SCCPResult:
    """Run SCCP over an :class:`SSAForm`."""
    counter = counter if counter is not None else WorkCounter()
    graph = ssa.graph
    values: dict[str, ConstValue] = {}
    for var, name in ssa.entry_names.items():
        values[name] = TOP  # entry values are unknown, per Section 4
    uses_of = ssa.uses_of()

    exec_edges: set[int] = set()
    exec_nodes: set[int] = set()
    flow_list: deque[int] = deque()  # edge ids newly executable
    ssa_list: deque[str] = deque()  # names whose value changed

    def name_value(name: str) -> ConstValue:
        return values.get(name, BOTTOM)

    def raise_name(name: str, value: ConstValue) -> None:
        joined = join_const(name_value(name), value)
        if joined != name_value(name):
            values[name] = joined
            ssa_list.append(name)

    def visit_phi(phi) -> None:
        counter.tick("phi_visits")
        incoming = [
            name_value(arg)
            for eid, arg in phi.args.items()
            if eid in exec_edges
        ]
        raise_name(phi.result, join_all(incoming) if incoming else BOTTOM)

    def visit_node(nid: int) -> None:
        counter.tick("node_visits")
        node = graph.node(nid)
        lookup = lambda v: name_value(ssa.use_names[(nid, v)])  # noqa: E731
        if node.kind is NodeKind.ASSIGN:
            assert node.expr is not None
            # Pruned SSA (e.g. derived from the DFG) gives dead
            # definitions no name; nothing consumes their value.
            name = ssa.def_names.get(nid)
            if name is not None:
                raise_name(name, eval_abstract(node.expr, lookup))
            mark_edges(graph.out_edges(nid))
        elif node.kind is NodeKind.SWITCH:
            assert node.expr is not None
            predicate = truthiness(eval_abstract(node.expr, lookup))
            if predicate is TOP:
                mark_edges(graph.out_edges(nid))
            elif predicate is not BOTTOM:
                label = "T" if predicate else "F"
                mark_edges([graph.switch_edge(nid, label)])
        else:
            mark_edges(graph.out_edges(nid))

    def mark_edges(edges) -> None:
        for edge in edges:
            if edge.id not in exec_edges:
                exec_edges.add(edge.id)
                flow_list.append(edge.id)

    # Seed: start executes.
    exec_nodes.add(graph.start)
    mark_edges(graph.out_edges(graph.start))

    while flow_list or ssa_list:
        while flow_list:
            eid = flow_list.popleft()
            nid = graph.edge(eid).dst
            if nid in ssa.phis:
                for phi in ssa.phis[nid].values():
                    visit_phi(phi)
            if nid not in exec_nodes:
                exec_nodes.add(nid)
                visit_node(nid)
        while ssa_list:
            name = ssa_list.popleft()
            for kind, site in uses_of.get(name, ()):  # re-evaluate users
                counter.tick("ssa_edge_propagations")
                if kind == "phi":
                    phi, _eid = site
                    visit_phi(phi)
                else:
                    nid, _var = site
                    if nid in exec_nodes:
                        visit_node(nid)
    return SCCPResult(values, exec_edges, exec_nodes)
