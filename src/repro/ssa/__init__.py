"""Static single assignment form (Definition 5) and algorithms on it.

Three roles in the reproduction:

* :mod:`repro.ssa.cytron` -- the standard construction (dominance
  frontiers + renaming), the baseline whose O(EV) competitor the paper's
  DFG-derived construction is (experiment C3);
* :mod:`repro.ssa.from_dfg` -- the paper's Section 3.3 construction:
  build the DFG, elide switches, convert merges to phi-functions; needs
  no dominance computation at all;
* :mod:`repro.ssa.sccp` -- Wegman-Zadeck sparse conditional constant
  propagation, the SSA-world algorithm that, like the paper's Section 4
  DFG algorithm, finds possible-paths constants.
"""

from repro.ssa.ssagraph import Phi, SSAForm
from repro.ssa.cytron import build_ssa_cytron, build_ssa_cytron_reference
from repro.ssa.destruct import destruct_ssa, sequentialize_parallel_copies
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.ssa.sccp import SCCPResult, sparse_conditional_constant_propagation

__all__ = [
    "Phi",
    "SCCPResult",
    "SSAForm",
    "build_ssa_cytron",
    "build_ssa_cytron_reference",
    "build_ssa_from_dfg",
    "destruct_ssa",
    "sequentialize_parallel_copies",
    "sparse_conditional_constant_propagation",
]
