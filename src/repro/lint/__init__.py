"""Dependence-based diagnostics (``repro lint``).

The paper's thesis is that sparse dependence representations make
program analyses cheap enough to run all the time; this package is the
"all the time" part: a diagnostics engine that runs the repository's
analyses -- def-use chains, DFG constant propagation, liveness,
availability/anticipatability, ADCE, copy propagation -- as lint rules
over source programs and reports findings with real source spans.

Layers:

* :mod:`repro.lint.model` -- the :class:`Diagnostic` record, severity
  levels and the stable rule catalog (codes ``R001`` ...).
* :mod:`repro.lint.rules` -- one pipeline pass per rule, registered on a
  clone of the default registry so they share the
  :class:`~repro.pipeline.manager.AnalysisManager` cache and metrics
  without perturbing the default pass list.
* :mod:`repro.lint.engine` -- :class:`LintEngine`: run the rules,
  verify, return a :class:`LintResult`.
* :mod:`repro.lint.oracle` -- the verifier: every ``definite`` finding
  must be confirmed by an independent witness (reference CFG dataflow,
  the Kildall constant propagator, def-use closure) and must survive
  dynamic refutation probes (interpreter runs); unconfirmed findings are
  demoted to ``possible``.
* :mod:`repro.lint.output` -- text, ``repro.lint/1`` JSON, SARIF 2.1.0
  and the baseline suppression file.
* :mod:`repro.lint.sweep` -- the corpus sweep behind ``repro lintsweep``
  (zero-unverified-definite over the equivalence corpus, precision and
  recall over the planted-defect generator).
"""

from repro.lint.engine import LintEngine, LintResult, lint_registry
from repro.lint.model import RULES, Diagnostic, RuleInfo
from repro.lint.oracle import verify_diagnostics
from repro.lint.output import (
    LINT_SCHEMA,
    SARIF_VERSION,
    baseline_fingerprints,
    baseline_payload,
    lint_payload,
    render_text,
    sarif_payload,
)
from repro.lint.sweep import LINTSWEEP_SCHEMA, run_lint_sweep

__all__ = [
    "Diagnostic",
    "LINTSWEEP_SCHEMA",
    "LINT_SCHEMA",
    "LintEngine",
    "LintResult",
    "RULES",
    "RuleInfo",
    "SARIF_VERSION",
    "baseline_fingerprints",
    "baseline_payload",
    "lint_payload",
    "lint_registry",
    "render_text",
    "run_lint_sweep",
    "sarif_payload",
    "verify_diagnostics",
]
