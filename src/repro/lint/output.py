"""Lint output formats: text, ``repro.lint/1`` JSON, SARIF 2.1.0, and
the baseline suppression file.

All payloads are deterministic: diagnostics arrive pre-sorted, every
derived collection is sorted before emission, and no timing or
environment-dependent field is included, so serialized output is
byte-identical across runs and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import LintResult
from repro.lint.model import RULES, SARIF_LEVELS, Diagnostic

#: Schema tags, alongside repro.bench/1, repro.incident/1, repro.profile/1.
LINT_SCHEMA = "repro.lint/1"
BASELINE_SCHEMA = "repro.lintbaseline/1"

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def _position(diag: Diagnostic) -> str:
    if diag.span is None:
        return "?:?"
    return f"{diag.span.line}:{diag.span.column}"


def render_text(path: str, diagnostics: list[Diagnostic]) -> str:
    """One line per finding, compiler-style, plus related spans and the
    fix hint indented below."""
    lines = []
    for diag in diagnostics:
        tags = []
        if diag.verified:
            tags.append("verified")
        if diag.demoted:
            tags.append("refuted" if diag.refuted else "unconfirmed")
        suffix = f" ({', '.join(tags)})" if tags else ""
        lines.append(
            f"{path}:{_position(diag)}: {diag.severity} {diag.rule} "
            f"[{diag.name}] {diag.message}{suffix}"
        )
        for note, span in diag.related:
            where = f"{span.line}:{span.column}" if span else "?:?"
            lines.append(f"  {path}:{where}: note: {note}")
        if diag.fix_hint:
            lines.append(f"  fix: {diag.fix_hint}")
    return "\n".join(lines) + ("\n" if lines else "")


def lint_payload(
    path: str, result: LintResult, suppressed: int = 0
) -> dict:
    """The ``repro.lint/1`` document."""
    fired = sorted({d.rule for d in result.diagnostics})
    return {
        "schema": LINT_SCHEMA,
        "file": path,
        "verified": result.verified,
        "summary": result.summary(),
        "suppressed": suppressed,
        "diagnostics": [d.as_dict() for d in result.diagnostics],
        "rules": {
            code: {
                "name": RULES[code].name,
                "severity": RULES[code].severity,
                "summary": RULES[code].summary,
            }
            for code in fired
        },
    }


def _sarif_region(span) -> dict:
    return {
        "startLine": span.line,
        "startColumn": span.column,
        "endLine": span.end_line,
        "endColumn": span.end_column,
    }


def _sarif_location(path: str, span) -> dict:
    physical: dict = {"artifactLocation": {"uri": path}}
    if span is not None:
        physical["region"] = _sarif_region(span)
    return {"physicalLocation": physical}


def sarif_payload(path: str, diagnostics: list[Diagnostic]) -> dict:
    """A SARIF 2.1.0 log with the full rule catalog as tool metadata."""
    codes = sorted(RULES)
    rule_index = {code: i for i, code in enumerate(codes)}
    results = []
    for diag in diagnostics:
        properties: dict = {"fingerprint": diag.fingerprint()}
        if diag.verified is not None:
            properties["verified"] = diag.verified
        if diag.demoted:
            properties["demoted"] = True
        if diag.refuted:
            properties["refuted"] = True
        if diag.data:
            properties["data"] = {key: value for key, value in diag.data}
        result = {
            "ruleId": diag.rule,
            "ruleIndex": rule_index[diag.rule],
            "level": SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [_sarif_location(path, diag.span)],
            "partialFingerprints": {"reproLint/v1": diag.fingerprint()},
            "properties": properties,
        }
        if diag.related:
            result["relatedLocations"] = [
                {
                    **_sarif_location(path, span),
                    "message": {"text": note},
                }
                for note, span in diag.related
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": [
                            {
                                "id": code,
                                "name": RULES[code].name,
                                "shortDescription": {
                                    "text": RULES[code].summary
                                },
                                "fullDescription": {
                                    "text": RULES[code].analysis
                                },
                                "help": {"text": RULES[code].fix_hint},
                                "defaultConfiguration": {
                                    "level": SARIF_LEVELS[
                                        RULES[code].severity
                                    ]
                                },
                            }
                            for code in codes
                        ],
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def baseline_payload(diagnostics: Iterable[Diagnostic]) -> dict:
    """A suppression file accepting every current finding."""
    return {
        "schema": BASELINE_SCHEMA,
        "suppressions": sorted({d.fingerprint() for d in diagnostics}),
    }


def baseline_fingerprints(payload: dict) -> frozenset[str]:
    """The suppressed fingerprints of a loaded baseline document."""
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"not a {BASELINE_SCHEMA} document: "
            f"schema={payload.get('schema')!r}"
        )
    return frozenset(payload.get("suppressions", ()))


def filter_baseline(
    diagnostics: list[Diagnostic], suppressions: frozenset[str]
) -> tuple[list[Diagnostic], int]:
    """Drop suppressed findings; returns (kept, suppressed_count)."""
    kept = [d for d in diagnostics if d.fingerprint() not in suppressions]
    return kept, len(diagnostics) - len(kept)
