"""The diagnostic model and the stable rule catalog.

Severities follow the paper's Section 4 split between *all-paths* and
*possible-paths* facts:

* ``definite`` -- true on every execution (all-paths); these findings go
  through the oracle verifier and ship with a measured
  zero-false-positive guarantee.
* ``possible`` -- true on some execution path (possible-paths); sound to
  warn about, not to assert.
* ``info`` -- an optimization opportunity (redundancy, hoisting, copy
  chains), not a defect.

Rule codes are stable identifiers: external consumers (baselines, SARIF
dashboards) key on them, so codes are never renumbered or reused.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Mapping

from repro.lang.ast_nodes import Span

#: Severity levels, strongest first (the order ``--fail-on`` thresholds).
SEVERITIES = ("definite", "possible", "info")

#: SARIF 2.1.0 result levels for each severity.
SARIF_LEVELS = {"definite": "error", "possible": "warning", "info": "note"}


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry for one rule: stable code, human name, the analysis
    that finds it and the oracle that confirms it."""

    code: str
    name: str
    severity: str
    summary: str
    analysis: str
    oracle: str
    fix_hint: str


#: The rule catalog.  The table in DESIGN.md section 10 mirrors this.
RULES: dict[str, RuleInfo] = {
    rule.code: rule
    for rule in (
        RuleInfo(
            "R001", "use-before-def", "definite",
            "variable is read before any assignment on every path",
            "def-use chains: every definition reaching the use is the entry value",
            "reference reaching definitions + trace replay (no probe run "
            "assigns the variable before the use)",
            "assign the variable before this statement",
        ),
        RuleInfo(
            "R002", "maybe-uninitialized", "possible",
            "variable may be read before assignment on some path",
            "def-use chains: the entry value is one of several definitions "
            "reaching the use",
            "reference reaching definitions: both the entry value and a "
            "real assignment reach the use",
            "assign the variable on every path to this statement",
        ),
        RuleInfo(
            "R003", "dead-store", "definite",
            "assigned value is never read",
            "liveness: the target is dead on the assignment's out-edge",
            "reference liveness + differential execution with the "
            "assignment spliced out",
            "remove the assignment or use its value",
        ),
        RuleInfo(
            "R004", "unreachable-statement", "definite",
            "statement can never execute",
            "DFG constant propagation: every input dependence stayed BOTTOM",
            "Kildall vector constant propagation + no probe trace visits "
            "the statement",
            "remove the statement or fix the branch guarding it",
        ),
        RuleInfo(
            "R005", "constant-branch", "definite",
            "branch condition always takes the same arm",
            "DFG constant propagation: the predicate evaluates to a constant",
            "Kildall vector constant propagation + every probe trace takes "
            "the predicted arm",
            "replace the branch with the arm that always runs",
        ),
        RuleInfo(
            "R006", "dead-code", "definite",
            "assignment feeds no observable output (cyclic dead chain)",
            "DFG mark-sweep (ADCE): the definition port is never demanded "
            "by a print or branch",
            "def-use transitive closure from observations + differential "
            "execution with the assignment spliced out",
            "remove the assignment chain",
        ),
        RuleInfo(
            "R007", "redundant-expression", "info",
            "expression was already computed on the incoming path(s)",
            "available / partially-available + anticipatable expressions "
            "(the PRE safety/profitability pair)",
            "generic-solver reference twins of the availability / "
            "anticipatability analyses agree",
            "reuse the earlier computation through a temporary",
        ),
        RuleInfo(
            "R008", "loop-invariant", "info",
            "expression is invariant in the enclosing loop",
            "natural loops: no operand is defined inside the loop body",
            "reference reaching definitions: no definition inside the loop "
            "body reaches the expression's operands",
            "hoist the computation out of the loop",
        ),
        RuleInfo(
            "R009", "self-assignment", "definite",
            "variable is assigned to itself",
            "syntactic: the right-hand side is exactly the target variable",
            "differential execution with the assignment spliced out",
            "remove the assignment",
        ),
        RuleInfo(
            "R010", "copy-chain", "info",
            "use reads a copy whose original is still available",
            "DFG copy-propagation justification: the original has the same "
            "dependence source at the use as at the copy",
            "reference reaching definitions match at copy and use + "
            "differential execution with the use rewritten to the original",
            "read the original variable directly",
        ),
        RuleInfo(
            "R011", "possibly-tainted-print", "possible",
            "printed or stored value may derive from an unvalidated entry "
            "value",
            "sparse forward taint tracking: some operand of the sink is "
            "transitively computed from a variable's entry value",
            "dense (per-edge) taint reference agrees that the operand is "
            "tainted at the sink",
            "validate or initialize the value before printing or storing it",
        ),
        RuleInfo(
            "R012", "empty-range-branch", "definite",
            "branch predicate is range-decided: one arm can never be taken",
            "sparse interval range analysis with branch refinement decides "
            "the predicate's truth (though no operand is constant)",
            "dense (per-edge) interval reference computes the same verdict "
            "+ every probe trace takes the predicted arm",
            "remove the arm that can never run, or fix the guard",
        ),
        RuleInfo(
            "R013", "range-dead-code", "definite",
            "statement is only reachable through range-dead branch edges "
            "(strong control dependence on a decided branch)",
            "interval-infeasible edges removed from the CFG leave the "
            "statement unreachable; NTSCD names the deciding branch",
            "dense interval reference reproduces the dead edges + reference "
            "NTSCD confirms the controlling branch + no probe trace visits "
            "the statement",
            "remove the statement or fix the branch that starves it",
        ),
    )
}

#: A sort key component larger than any real line/column.
_NO_POS = 1 << 30


@dataclass(frozen=True)
class Diagnostic:
    """One finding.

    Frozen so rule passes can cache their result lists in the
    AnalysisManager: the oracle verifier returns *new* diagnostics (via
    :func:`dataclasses.replace`) instead of mutating cached ones.
    """

    rule: str
    severity: str
    message: str
    span: Span | None = None
    node: int = -1
    var: str | None = None
    #: (note, span) pairs pointing at related source locations.
    related: tuple[tuple[str, Span | None], ...] = ()
    fix_hint: str | None = None
    #: ``None`` until the oracle runs; then True/False for definite rules.
    verified: bool | None = None
    #: True when a definite finding failed verification and was demoted.
    demoted: bool = False
    #: True when a dynamic probe actively contradicted the finding (a
    #: measured false positive, not merely an unconfirmed one).
    refuted: bool = False
    #: Rule-specific payload (e.g. the constant value of a branch).
    data: tuple[tuple[str, object], ...] = ()

    @property
    def name(self) -> str:
        return RULES[self.rule].name

    def sort_key(self) -> tuple:
        line = self.span.line if self.span else _NO_POS
        column = self.span.column if self.span else _NO_POS
        return (line, column, self.rule, self.node, self.var or "", self.message)

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression: rule + position +
        subject.  Deliberately excludes the message text so rewording a
        message does not un-suppress old findings."""
        where = f"{self.span.line}:{self.span.column}" if self.span else "-"
        raw = f"{self.rule}|{where}|{self.var or ''}"
        return hashlib.sha256(raw.encode()).hexdigest()[:16]

    def as_dict(self) -> dict:
        """JSON shape (stable key order comes from ``sort_keys`` at dump
        time; no timing or environment-dependent fields)."""
        payload: dict = {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "span": self.span.as_dict() if self.span else None,
            "node": self.node,
            "var": self.var,
            "fingerprint": self.fingerprint(),
        }
        if self.related:
            payload["related"] = [
                {"message": note, "span": span.as_dict() if span else None}
                for note, span in self.related
            ]
        if self.fix_hint:
            payload["fix_hint"] = self.fix_hint
        if self.verified is not None:
            payload["verified"] = self.verified
        if self.demoted:
            payload["demoted"] = True
        if self.refuted:
            payload["refuted"] = True
        if self.data:
            payload["data"] = {key: value for key, value in self.data}
        return payload


def make_diagnostic(
    rule: str,
    span: Span | None,
    message: str,
    node: int = -1,
    var: str | None = None,
    related: tuple[tuple[str, Span | None], ...] = (),
    data: Mapping[str, object] | None = None,
) -> Diagnostic:
    """Build a diagnostic with the catalog's severity and fix hint."""
    info = RULES[rule]
    return Diagnostic(
        rule=rule,
        severity=info.severity,
        message=message,
        span=span,
        node=node,
        var=var,
        related=related,
        fix_hint=info.fix_hint,
        data=tuple(sorted(data.items())) if data else (),
    )


def demote(diag: Diagnostic, refuted: bool = False) -> Diagnostic:
    """A definite finding that failed verification, downgraded."""
    return replace(
        diag, severity="possible", verified=False, demoted=True, refuted=refuted
    )


def confirm(diag: Diagnostic) -> Diagnostic:
    return replace(diag, verified=True)


def sorted_diagnostics(diags) -> list[Diagnostic]:
    """Deterministic presentation order: position, then rule, then subject.
    Never depends on set/dict iteration order, so output is byte-identical
    across ``PYTHONHASHSEED`` values."""
    return sorted(diags, key=Diagnostic.sort_key)
