"""The corpus sweep behind ``repro lintsweep``: the measured guarantees.

Two populations:

* the **equivalence corpus** (the 204-program population of
  ``tests/test_perf_equivalence.py``, via
  :func:`repro.perf.batch.equivalence_suite`): every program is linted
  with verification on, and the sweep asserts **zero unverified definite
  findings** -- a definite finding either earns an independent witness
  or is demoted, never shipped bare;
* the **planted-defect population**
  (:func:`repro.workloads.lint_defects.lint_defect_case`): programs with
  ground-truth labels, scored for recall (every planted defect found at
  its exact line) and precision (every finding of a planted rule matches
  a label).

The resulting ``repro.lintsweep/1`` payload is checked in as
``LINT_<tag>.json`` and gated in CI: ``ok`` requires zero unverified
definites, zero refuted findings, zero oracle-checker failures
(checkers that *raised* instead of answering), and recall >= the floor.
"""

from __future__ import annotations

from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lint.engine import LintEngine
from repro.perf.batch import equivalence_suite, resolve_family
from repro.workloads.lint_defects import PLANTED_RULES, lint_defect_case

LINTSWEEP_SCHEMA = "repro.lintsweep/1"

#: Recall floor the payload's ``ok`` flag enforces.
RECALL_FLOOR = 0.95


def _lint_source(source: str, max_steps: int):
    graph = build_cfg(parse_program(source))
    return LintEngine(graph).run(verify=True, max_steps=max_steps)


def _sweep_corpus(smoke: bool, max_steps: int) -> dict:
    """Lint every corpus program; count verification outcomes by rule."""
    by_rule: dict[str, dict[str, int]] = {}
    programs = 0
    findings = 0
    unverified_definite = 0
    refuted = 0
    oracle_failures = 0
    failures: list[str] = []
    for spec in equivalence_suite(smoke=smoke):
        programs += 1
        program = resolve_family(spec["family"])(*spec["args"])
        # Generated ASTs carry no spans; round-trip through the pretty
        # printer so findings point at real source positions.
        result = _lint_source(pretty_program(program), max_steps)
        findings += len(result.diagnostics)
        oracle_failures += len(result.oracle_failures)
        bad = result.unverified_definite()
        unverified_definite += bad
        if bad or result.oracle_failures:
            failures.append(spec["label"])
        for diag in result.diagnostics:
            row = by_rule.setdefault(
                diag.rule,
                {"found": 0, "verified": 0, "demoted": 0, "refuted": 0},
            )
            row["found"] += 1
            if diag.verified:
                row["verified"] += 1
            if diag.demoted:
                row["demoted"] += 1
            if diag.refuted:
                row["refuted"] += 1
                refuted += 1
    return {
        "programs": programs,
        "findings": findings,
        "unverified_definite": unverified_definite,
        "refuted": refuted,
        "oracle_failures": oracle_failures,
        "failing_programs": sorted(failures),
        "by_rule": dict(sorted(by_rule.items())),
    }


def _sweep_planted(smoke: bool, max_steps: int) -> dict:
    """Score diagnostics against the generator's ground-truth labels."""
    cases = 8 if smoke else 40
    planted = 0
    found = 0
    oracle_failures = 0
    scored_findings = 0
    matched_findings = 0
    missed: list[dict] = []
    for seed in range(cases):
        source, labels = lint_defect_case(seed)
        result = _lint_source(source, max_steps)
        oracle_failures += len(result.oracle_failures)
        # A diagnostic matches a label when the rule agrees and the
        # primary span sits on the labelled line.
        positions = {
            (d.rule, d.span.line)
            for d in result.diagnostics
            if d.span is not None
        }
        label_keys = {(label.rule, label.line) for label in labels}
        planted += len(labels)
        for label in labels:
            if (label.rule, label.line) in positions:
                found += 1
            else:
                missed.append(
                    {"seed": seed, "rule": label.rule, "line": label.line}
                )
        for diag in result.diagnostics:
            if diag.rule not in PLANTED_RULES or diag.span is None:
                continue
            scored_findings += 1
            if (diag.rule, diag.span.line) in label_keys:
                matched_findings += 1
    recall = round(found / planted, 4) if planted else 1.0
    precision = (
        round(matched_findings / scored_findings, 4)
        if scored_findings
        else 1.0
    )
    return {
        "cases": cases,
        "planted": planted,
        "found": found,
        "recall": recall,
        "scored_findings": scored_findings,
        "matched_findings": matched_findings,
        "precision": precision,
        "oracle_failures": oracle_failures,
        "missed": missed,
    }


def run_lint_sweep(
    tag: str = "dev", smoke: bool = False, max_steps: int = 20_000
) -> dict:
    """The full sweep; returns the ``repro.lintsweep/1`` payload.

    No timing or environment fields: the payload for a given corpus is
    deterministic, so it can be checked in and diffed across PRs.
    """
    corpus = _sweep_corpus(smoke, max_steps)
    planted = _sweep_planted(smoke, max_steps)
    ok = (
        corpus["unverified_definite"] == 0
        and corpus["refuted"] == 0
        and corpus["oracle_failures"] == 0
        and planted["oracle_failures"] == 0
        and planted["recall"] >= RECALL_FLOOR
    )
    return {
        "schema": LINTSWEEP_SCHEMA,
        "tag": tag,
        "mode": "smoke" if smoke else "full",
        "recall_floor": RECALL_FLOOR,
        "corpus": corpus,
        "planted": planted,
        "ok": ok,
    }
