"""The lint rules, each a pipeline pass over the shared analyses.

Every rule body is a pure function of the graph and its declared
dependencies, so the :class:`~repro.pipeline.manager.AnalysisManager`
caches rule results exactly like any analysis: re-linting an unchanged
graph is all cache hits, and a graph mutation invalidates precisely the
rules whose inputs changed.

Rules are registered on a *clone* of the default registry
(:func:`lint_registry`): the default pass list is part of the profiling
and chaos surface (pass counts appear in goldens and sweep payloads), so
lint must extend it without mutating it.

Determinism: every iteration below runs over sorted node ids, sorted
variable names, or tree-ordered subexpressions -- never over bare
set/dict iteration -- and spans are always taken from the node's own
expression tree, so output is byte-identical across ``PYTHONHASHSEED``
values.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, Node, NodeKind
from repro.core.dce import dead_assignments
from repro.core.dfg import CTRL_VAR, PortKind
from repro.dataflow.anticipatable import anticipatable_expressions
from repro.graphs.loops import natural_loops
from repro.lang.ast_nodes import (
    Expr,
    Span,
    Var,
    expr_vars,
    is_trivial,
    subexpressions,
)
from repro.lang.pretty import pretty_expr
from repro.lint.model import Diagnostic, make_diagnostic, sorted_diagnostics
from repro.pipeline.manager import PassRegistry
from repro.pipeline.passes import default_registry

#: Pass name of each rule, in catalog order.
RULE_PASSES = {
    "R001": "lint-use-before-def",
    "R002": "lint-maybe-uninit",
    "R003": "lint-dead-store",
    "R004": "lint-unreachable",
    "R005": "lint-constant-branch",
    "R006": "lint-dead-code",
    "R007": "lint-redundant-expr",
    "R008": "lint-loop-invariant",
    "R009": "lint-self-assign",
    "R010": "lint-copy-chain",
    "R011": "lint-tainted-print",
    "R012": "lint-empty-range-branch",
    "R013": "lint-range-dead",
}

#: The aggregate pass: every rule's findings, in presentation order.
LINT_PASS = "lint"


def _var_span(node: Node, var: str) -> Span | None:
    """The span of the first occurrence of ``var`` in the node's
    expression (tree order), falling back to the statement span.  Always
    reads the node's own tree -- never a set member -- so the chosen span
    cannot depend on set iteration order."""
    if node.expr is not None:
        for sub in subexpressions(node.expr):
            if isinstance(sub, Var) and sub.name == var and sub.span is not None:
                return sub.span
    return node.span


def _statement_nodes(graph: CFG) -> list[Node]:
    """Real statements in id order: ASSIGN/PRINT/SWITCH nodes.  Synthetic
    nodes the normalizer introduced (MERGE, NOP, and the span-less
    loop-exit switches) never host findings."""
    return [
        graph.node(nid)
        for nid in sorted(graph.nodes)
        if graph.node(nid).kind
        in (NodeKind.ASSIGN, NodeKind.PRINT, NodeKind.SWITCH)
    ]


# -- rule bodies -------------------------------------------------------------


def rule_use_before_def(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R001: every definition reaching the use is the entry value."""
    chains = deps["defuse"]
    unreachable = deps["constprop"].dead_nodes
    found = []
    for node in _statement_nodes(graph):
        if node.id in unreachable:
            continue  # R004's finding; a use that never runs is not a read
        counter.tick("lint_nodes_scanned")
        for var in sorted(node.uses()):
            defs = chains.defs_reaching_use(node.id, var)
            if defs and all(d == graph.start for d in defs):
                found.append(
                    make_diagnostic(
                        "R001",
                        _var_span(node, var),
                        f"'{var}' is read but no assignment ever reaches "
                        f"this use",
                        node=node.id,
                        var=var,
                    )
                )
    return tuple(sorted_diagnostics(found))


def rule_maybe_uninit(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R002: the entry value is one of several definitions reaching the
    use -- uninitialized on some path, assigned on others."""
    chains = deps["defuse"]
    unreachable = deps["constprop"].dead_nodes
    found = []
    for node in _statement_nodes(graph):
        if node.id in unreachable:
            continue
        counter.tick("lint_nodes_scanned")
        for var in sorted(node.uses()):
            defs = chains.defs_reaching_use(node.id, var)
            real = sorted(d for d in defs if d != graph.start)
            if real and len(real) < len(defs):
                related = tuple(
                    ("assigned here", graph.node(d).span) for d in real
                )
                found.append(
                    make_diagnostic(
                        "R002",
                        _var_span(node, var),
                        f"'{var}' may be uninitialized: assigned on some "
                        f"paths to this use, not all",
                        node=node.id,
                        var=var,
                        related=related,
                    )
                )
    return tuple(sorted_diagnostics(found))


def rule_dead_store(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R003: the assigned variable is dead on the assignment's out-edge."""
    live = deps["liveness"]
    unreachable = deps["constprop"].dead_nodes
    found = []
    for node in _statement_nodes(graph):
        if node.kind is not NodeKind.ASSIGN or node.id in unreachable:
            continue
        counter.tick("lint_nodes_scanned")
        assert node.target is not None
        if node.target not in live[graph.out_edge(node.id).id]:
            found.append(
                make_diagnostic(
                    "R003",
                    node.span,
                    f"value assigned to '{node.target}' is never read",
                    node=node.id,
                    var=node.target,
                )
            )
    return tuple(sorted_diagnostics(found))


def rule_unreachable(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R004: DFG constant propagation left every input dependence BOTTOM
    -- the statement executes on no possible path."""
    found = []
    for node in _statement_nodes(graph):
        counter.tick("lint_nodes_scanned")
        if node.id in deps["constprop"].dead_nodes and node.span is not None:
            found.append(
                make_diagnostic(
                    "R004",
                    node.span,
                    "statement can never execute",
                    node=node.id,
                )
            )
    return tuple(sorted_diagnostics(found))


def rule_constant_branch(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R005: the branch predicate is a compile-time constant, so one arm
    always runs.  Span-less switches are the normalizer's synthetic loop
    exits, not source branches -- skipped."""
    constants = deps["constprop"]
    constant_rhs = constants.constant_rhs()
    found = []
    for node in _statement_nodes(graph):
        if node.kind is not NodeKind.SWITCH or node.span is None:
            continue
        counter.tick("lint_nodes_scanned")
        if node.id in constants.dead_nodes or node.id not in constant_rhs:
            continue
        value = constant_rhs[node.id]
        arm = "true" if value else "false"
        found.append(
            make_diagnostic(
                "R005",
                node.span,
                f"branch condition is always {value}: the {arm} arm "
                f"always runs",
                node=node.id,
                data={"value": value, "arm": "T" if value else "F"},
            )
        )
    return tuple(sorted_diagnostics(found))


def rule_dead_code(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R006: the assignment's value never reaches a print or a branch
    (ADCE mark-sweep) even though its target is live -- the cyclic dead
    chains liveness-based R003 cannot see."""
    live = deps["liveness"]
    unreachable = deps["constprop"].dead_nodes
    found = []
    for nid in dead_assignments(graph, deps["dfg"], counter):
        node = graph.node(nid)
        if nid in unreachable:
            continue  # R004 already covers statements that never run
        assert node.target is not None
        if node.target not in live[graph.out_edge(nid).id]:
            continue  # plain dead store; R003's finding
        found.append(
            make_diagnostic(
                "R006",
                node.span,
                f"'{node.target}' is only ever used to compute itself; "
                f"no output depends on it",
                node=nid,
                var=node.target,
            )
        )
    return tuple(sorted_diagnostics(found))


def _flag_redundant(node, eid, av, pav, ant, found, counter) -> None:
    """Recurse outermost-first; a flagged expression's subexpressions are
    covered by its fix, so recursion stops at a finding."""

    def visit(sub: Expr) -> None:
        if is_trivial(sub):
            return
        counter.tick("lint_exprs_scanned")
        text = pretty_expr(sub)
        span = sub.span or node.span
        if sub in av[eid]:
            found.append(
                make_diagnostic(
                    "R007",
                    span,
                    f"'{text}' was already computed on every path to this "
                    f"statement",
                    node=node.id,
                    var=text,
                    data={"kind": "full"},
                )
            )
            return
        if sub in pav[eid] and sub in ant[eid]:
            found.append(
                make_diagnostic(
                    "R007",
                    span,
                    f"'{text}' was already computed on some path to this "
                    f"statement (PRE candidate)",
                    node=node.id,
                    var=text,
                    data={"kind": "partial"},
                )
            )
            return
        for child in _direct_children(sub):
            visit(child)

    visit(node.expr)


def _direct_children(expr: Expr) -> list[Expr]:
    from repro.lang.ast_nodes import BinOp, Index, UnOp, Update

    if isinstance(expr, UnOp):
        return [expr.operand]
    if isinstance(expr, BinOp):
        return [expr.left, expr.right]
    if isinstance(expr, Index):
        return [expr.index]
    if isinstance(expr, Update):
        return [expr.index, expr.value]
    return []


def rule_redundant_expr(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R007: fully redundant (available on the in-edge) or partially
    redundant (partially available and anticipatable: the PRE pair)."""
    av, pav, ant = deps["available"], deps["pavailable"], deps["anticipatable"]
    found: list[Diagnostic] = []
    for node in _statement_nodes(graph):
        if node.expr is None or len(graph.in_edges(node.id)) != 1:
            continue
        eid = graph.in_edge(node.id).id
        _flag_redundant(node, eid, av, pav, ant, found, counter)
    return tuple(sorted_diagnostics(found))


def rule_loop_invariant(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R008: a maximal non-trivial expression inside a loop none of whose
    operands is defined in the loop body -- a hoist candidate."""
    loops = natural_loops(graph)
    found: list[Diagnostic] = []
    reported: set[tuple[int, Expr]] = set()
    for header in sorted(loops):
        body = loops[header]
        defined = frozenset().union(
            *(graph.node(b).defs() for b in body)
        )

        def visit(node: Node, sub: Expr) -> None:
            if is_trivial(sub):
                return
            counter.tick("lint_exprs_scanned")
            if not (expr_vars(sub) & defined):
                if (node.id, sub) not in reported:
                    reported.add((node.id, sub))
                    text = pretty_expr(sub)
                    found.append(
                        make_diagnostic(
                            "R008",
                            sub.span or node.span,
                            f"'{text}' is loop-invariant: no operand "
                            f"changes inside the loop",
                            node=node.id,
                            var=text,
                        )
                    )
                return
            for child in _direct_children(sub):
                visit(node, child)

        for nid in sorted(body):
            node = graph.node(nid)
            if node.expr is not None and node.span is not None:
                visit(node, node.expr)
    return tuple(sorted_diagnostics(found))


def rule_self_assign(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R009: ``x := x`` -- the right-hand side is exactly the target."""
    unreachable = deps["constprop"].dead_nodes
    found = []
    for node in _statement_nodes(graph):
        if node.kind is not NodeKind.ASSIGN or node.id in unreachable:
            continue
        counter.tick("lint_nodes_scanned")
        if node.expr == Var(node.target):
            found.append(
                make_diagnostic(
                    "R009",
                    node.span,
                    f"'{node.target}' is assigned to itself",
                    node=node.id,
                    var=node.target,
                )
            )
    return tuple(sorted_diagnostics(found))


def rule_copy_chain(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R010: the use reads a copy whose original still has the same
    dependence source here as at the copy -- copy propagation's exact
    justification, read-only."""
    dfg = deps["dfg"]
    unreachable = deps["constprop"].dead_nodes
    resolver = dfg.resolver

    def elide(port):
        while port.kind is PortKind.SWITCH:
            port = dfg.switch_input(port)
        return port

    found = []
    for nid, var in sorted(dfg.use_sources):
        if var == CTRL_VAR or nid in unreachable:
            continue
        counter.tick("lint_uses_scanned")
        source = elide(dfg.use_sources[(nid, var)])
        if source.kind is not PortKind.DEF:
            continue
        copy_node = graph.node(source.node)
        if not isinstance(copy_node.expr, Var):
            continue
        original = copy_node.expr.name
        if original == var:
            continue  # x := x is R009's finding
        at_copy = elide(resolver.source_at_node(source.node, original))
        at_use = elide(resolver.source_at_node(nid, original))
        if at_copy != at_use:
            continue
        node = graph.node(nid)
        found.append(
            make_diagnostic(
                "R010",
                _var_span(node, var),
                f"'{var}' is a copy of '{original}', which is unchanged "
                f"since the copy: read '{original}' directly",
                node=nid,
                var=var,
                related=(("copied here", copy_node.span),),
                data={"original": original, "copy_node": source.node},
            )
        )
    return tuple(sorted_diagnostics(found))


def rule_tainted_print(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R011: a sink (print, or array store) consumes a value transitively
    derived from some variable's *entry* value -- data nothing in the
    program ever validated.  Uses whose entry value arrives *directly*
    are R001/R002's findings, so only transitive flows are reported."""
    from repro.sparse.taint import is_sink

    taint = deps["sparse-taint"]
    chains = deps["defuse"]
    unreachable = deps["constprop"].dead_nodes
    found = []
    for node in _statement_nodes(graph):
        if node.id in unreachable or not is_sink(node):
            continue
        counter.tick("lint_nodes_scanned")
        for var in sorted(node.uses()):
            if not taint.use_taint.get((node.id, var)):
                continue
            if graph.start in chains.defs_reaching_use(node.id, var):
                continue  # the entry value itself: R001/R002's finding
            found.append(
                make_diagnostic(
                    "R011",
                    _var_span(node, var),
                    f"'{var}' may carry an unvalidated entry value into "
                    f"this output",
                    node=node.id,
                    var=var,
                )
            )
    return tuple(sorted_diagnostics(found))


def rule_empty_range_branch(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R012: interval analysis decides the predicate even though no
    operand is a compile-time constant (those are R005's findings): one
    arm's refined environment is provably empty."""
    from repro.sparse import interval as _iv

    ranges = deps["sparse-range"]
    constants = deps["constprop"]
    constant_rhs = constants.constant_rhs()
    found = []
    for node in _statement_nodes(graph):
        if node.kind is not NodeKind.SWITCH or node.span is None:
            continue
        counter.tick("lint_nodes_scanned")
        if node.id in constants.dead_nodes or node.id in constant_rhs:
            continue
        pred = ranges.switch_values.get(node.id)
        if pred is None or pred.is_empty:
            continue
        verdict = _iv.truth(pred)
        if verdict is None:
            continue
        arm = "true" if verdict else "false"
        found.append(
            make_diagnostic(
                "R012",
                node.span,
                f"branch condition is always {arm}: its value stays in "
                f"{pred}",
                node=node.id,
                data={"value": bool(verdict), "arm": "T" if verdict else "F"},
            )
        )
    return tuple(sorted_diagnostics(found))


def rule_range_dead(graph, deps, counter) -> tuple[Diagnostic, ...]:
    """R013: removing the range-dead branch edges leaves the statement
    unreachable, and NTSCD names a deciding branch the statement is
    strongly control-dependent on.  Constant-propagation-dead statements
    are R004's findings; this rule catches what *interval* reasoning
    kills -- including code after a provably non-terminating loop, which
    only non-termination-sensitive control dependence attributes."""
    ranges = deps["sparse-range"]
    dead_edges = ranges.dead_edges
    if not dead_edges:
        return ()
    ntscd = deps["ntscd"]
    unreachable = deps["constprop"].dead_nodes
    live = {graph.start}
    stack = [graph.start]
    while stack:
        nid = stack.pop()
        counter.tick("lint_nodes_scanned")
        for edge in graph.out_edges(nid):
            if edge.id in dead_edges or edge.dst in live:
                continue
            live.add(edge.dst)
            stack.append(edge.dst)
    owners = frozenset(graph.edge(eid).src for eid in dead_edges)
    found = []
    for node in _statement_nodes(graph):
        if node.id in live or node.id in unreachable or node.span is None:
            continue
        controllers = sorted(ntscd.deps.get(node.id, frozenset()) & owners)
        if not controllers:
            continue
        branch = graph.node(controllers[0])
        found.append(
            make_diagnostic(
                "R013",
                node.span,
                "statement is unreachable once range-impossible branch "
                "arms are removed",
                node=node.id,
                related=(
                    ("decided by this branch", branch.span),
                ),
                data={"branch": controllers[0]},
            )
        )
    return tuple(sorted_diagnostics(found))


# -- registry ----------------------------------------------------------------

_RULE_BODIES = {
    "R001": (rule_use_before_def, ("defuse", "constprop")),
    "R002": (rule_maybe_uninit, ("defuse", "constprop")),
    "R003": (rule_dead_store, ("cfg", "liveness", "constprop")),
    "R004": (rule_unreachable, ("constprop",)),
    "R005": (rule_constant_branch, ("constprop",)),
    "R006": (rule_dead_code, ("dfg", "liveness", "constprop")),
    "R007": (rule_redundant_expr, ("available", "pavailable", "anticipatable")),
    "R008": (rule_loop_invariant, ("cfg", "csr")),
    "R009": (rule_self_assign, ("cfg", "constprop")),
    "R010": (rule_copy_chain, ("dfg", "constprop")),
    "R011": (rule_tainted_print, ("sparse-taint", "defuse", "constprop")),
    "R012": (rule_empty_range_branch, ("sparse-range", "constprop")),
    "R013": (rule_range_dead, ("sparse-range", "ntscd", "constprop")),
}

_LINT_REGISTRY: PassRegistry | None = None


def lint_registry() -> PassRegistry:
    """The default registry extended with the ANT pass and every lint
    rule (built once, shared -- registries are immutable after build)."""
    global _LINT_REGISTRY
    if _LINT_REGISTRY is not None:
        return _LINT_REGISTRY
    registry = default_registry().clone()

    @registry.register(
        "anticipatable", deps=("cfg", "csr"),
        description="totally anticipatable expressions per edge (ANT)",
    )
    def _anticipatable(graph, deps, counter):
        return anticipatable_expressions(graph, counter, csr=deps["csr"])

    for code in sorted(_RULE_BODIES):
        body, rule_deps = _RULE_BODIES[code]
        registry.register(
            RULE_PASSES[code], deps=rule_deps,
            description=f"lint rule {code}",
        )(body)

    rule_pass_names = tuple(RULE_PASSES[code] for code in sorted(RULE_PASSES))

    @registry.register(
        LINT_PASS, deps=rule_pass_names,
        description="all lint findings, in presentation order",
    )
    def _lint(graph, deps, counter):
        merged: list[Diagnostic] = []
        for name in rule_pass_names:
            merged.extend(deps[name])
        counter.tick("lint_findings", len(merged))
        return tuple(sorted_diagnostics(merged))

    _LINT_REGISTRY = registry
    return registry
