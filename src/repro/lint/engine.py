"""The lint engine: rules as pipeline passes, verified findings out.

The engine owns (or borrows) an :class:`AnalysisManager` built on
:func:`~repro.lint.rules.lint_registry`, so every rule shares the
analysis cache: linting after an earlier ``repro analyze`` reuses the
DFG, liveness, and constant propagation already computed, and re-linting
an unchanged graph is pure cache hits (visible in ``repro profile
--lint``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.graph import CFG
from repro.lint.model import Diagnostic, sorted_diagnostics
from repro.lint.oracle import DEFAULT_PROBE_STEPS, verify_diagnostics
from repro.lint.rules import LINT_PASS, lint_registry
from repro.pipeline.manager import AnalysisManager


@dataclass
class LintResult:
    """The findings of one lint run, plus the manager that produced them
    (kept so callers can inspect cache/work metrics afterwards)."""

    diagnostics: list[Diagnostic]
    verified: bool
    manager: AnalysisManager = field(repr=False)
    #: Structured :func:`~repro.robust.errors.error_record` dicts, one per
    #: oracle checker that *raised* during verification.  Non-empty means
    #: the zero-false-positive guarantee was not fully measured: ``repro
    #: lint`` surfaces this as an analysis error (exit 2) and the sweep's
    #: ``ok`` gate requires the count to be zero.
    oracle_failures: list[dict] = field(default_factory=list)

    def by_severity(self) -> dict[str, int]:
        counts = {"definite": 0, "possible": 0, "info": 0}
        for diag in self.diagnostics:
            counts[diag.severity] += 1
        return counts

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return counts

    def summary(self) -> dict:
        """Stable, JSON-ready totals (sorted keys, no timing fields)."""
        return {
            "total": len(self.diagnostics),
            "by_severity": self.by_severity(),
            "by_rule": dict(sorted(self.by_rule().items())),
            "verified": sum(1 for d in self.diagnostics if d.verified),
            "demoted": sum(1 for d in self.diagnostics if d.demoted),
            "refuted": sum(1 for d in self.diagnostics if d.refuted),
        }

    def unverified_definite(self) -> int:
        """Definite findings that did not earn ``verified=True`` -- the
        count the corpus sweep and the CI gate require to be zero.  A
        verified run demotes these, so after verification the count is
        zero by construction *unless* verification was skipped."""
        return sum(
            1
            for d in self.diagnostics
            if d.severity == "definite" and d.verified is not True
        )


class LintEngine:
    """Run the rule passes over one CFG and (optionally) verify.

    >>> from repro.cfg.builder import build_cfg
    >>> from repro.lang.parser import parse_program
    >>> g = build_cfg(parse_program("x := y; print x;"))
    >>> result = LintEngine(g).run()
    >>> [d.rule for d in result.diagnostics]  # copy chain + tainted print
    ['R001', 'R010', 'R011']
    >>> result.diagnostics[0].verified
    True
    """

    def __init__(
        self,
        graph: CFG,
        manager: AnalysisManager | None = None,
    ) -> None:
        self.graph = graph
        self.manager = manager or AnalysisManager(
            graph, registry=lint_registry()
        )

    def run(
        self,
        verify: bool = True,
        max_steps: int = DEFAULT_PROBE_STEPS,
    ) -> LintResult:
        diagnostics = list(self.manager.get(LINT_PASS))
        failures: list[dict] = []
        if verify:
            diagnostics = verify_diagnostics(
                self.graph, diagnostics, max_steps=max_steps, failures=failures
            )
        return LintResult(
            diagnostics=sorted_diagnostics(diagnostics),
            verified=verify,
            manager=self.manager,
            oracle_failures=failures,
        )
