"""The verifier behind the zero-false-positive guarantee.

Every ``definite`` finding must be *confirmed* by an independent witness
-- an analysis that shares no code with the rule that produced it -- and
must survive *dynamic refutation probes*: concrete interpreter runs that
would expose a wrong claim.  A finding that cannot be confirmed is
demoted to ``possible``; a finding a probe actively contradicts is
additionally marked ``refuted`` (a measured false positive, the quantity
``repro lintsweep`` drives to zero over the corpus).

Witness table (rules produced by DFG-side analyses are checked by
CFG-side ones and vice versa):

========  ==========================================  =====================
rule      static confirmation                         dynamic probe
========  ==========================================  =====================
R001      reference reaching definitions               no probe trace assigns
          (generic solver): only the entry             the variable before the
          definition reaches the use                   use executes
R003      reference liveness: target dead on the       splicing the assignment
          out-edge                                     out preserves outputs
R004      Kildall vector constant propagation          no probe trace visits
          marks the node dead                          the node
R005      Kildall constant propagation computes        every probe takes the
          the same constant predicate                  predicted arm
R006      def-use closure from prints/branches         splicing the assignment
          never demands the definition                 out preserves outputs
R009      right-hand side is exactly the target        splicing the assignment
                                                       out preserves outputs
========  ==========================================  =====================

Probes run the program under several entry environments (empty, all-1s,
all-2s, alternating).  A probe that raises -- step-limit blowout on a
non-terminating program, division by zero -- is *inconclusive* and
simply skipped: it neither confirms nor refutes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cfg.graph import CFG, NodeKind
from repro.cfg.interp import run_cfg
from repro.dataflow.anticipatable import anticipatable_expressions_reference
from repro.dataflow.available import (
    available_expressions_reference,
    partially_available_expressions_reference,
)
from repro.dataflow.liveness import live_variables_reference
from repro.dataflow.reaching import reaching_definitions_reference
from repro.defuse.chains import build_def_use_chains
from repro.graphs.loops import natural_loops
from repro.lang.ast_nodes import (
    BinOp,
    Expr,
    Index,
    UnOp,
    Update,
    Var,
    expr_vars,
    subexpressions,
)
from repro.lang.errors import InterpError
from repro.lang.interp import ExecutionResult
from repro.lang.pretty import pretty_expr
from repro.lint.model import Diagnostic, confirm, demote, sorted_diagnostics
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.robust.errors import error_record
from repro.util.counters import WorkCounter

#: Step budget per probe run; corpus programs are small, so a blowout
#: means non-termination, which the probes treat as inconclusive.
DEFAULT_PROBE_STEPS = 20_000

#: Magnitude cap on probe values: a generated loop that squares a
#: variable each iteration produces bigints whose arithmetic dwarfs the
#: step budget, so probes abort (inconclusively) once a value passes
#: this bound.
PROBE_VALUE_LIMIT = 10**18


def probe_environments(graph: CFG) -> list[dict[str, int]]:
    """Deterministic entry environments for the refutation probes."""
    names = sorted(graph.variables())
    return [
        {},
        {name: 1 for name in names},
        {name: 2 for name in names},
        {name: (7 if i % 2 else 0) for i, name in enumerate(names)},
    ]


class _Oracle:
    """Lazily-built witnesses shared across one verification batch."""

    def __init__(self, graph: CFG, max_steps: int) -> None:
        self.graph = graph
        self.max_steps = max_steps
        self._cache: dict[str, object] = {}
        self._splices: dict[int, bool] = {}

    def _memo(self, key: str, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    # -- static witnesses --------------------------------------------------

    def reaching(self):
        return self._memo(
            "reaching",
            lambda: reaching_definitions_reference(self.graph, WorkCounter()),
        )

    def liveness(self):
        return self._memo(
            "liveness",
            lambda: live_variables_reference(self.graph, counter=WorkCounter()),
        )

    def kildall(self):
        return self._memo(
            "kildall",
            lambda: cfg_constant_propagation(self.graph, WorkCounter()),
        )

    def ranges(self):
        from repro.sparse.range_analysis import range_analysis_reference

        return self._memo(
            "ranges",
            lambda: range_analysis_reference(self.graph, WorkCounter()),
        )

    def taint(self):
        from repro.sparse.taint import taint_analysis_reference

        return self._memo(
            "taint",
            lambda: taint_analysis_reference(self.graph, counter=WorkCounter()),
        )

    def ntscd(self):
        from repro.controldep.ntscd import ntscd_reference

        return self._memo(
            "ntscd", lambda: ntscd_reference(self.graph, WorkCounter())
        )

    def available(self):
        return self._memo(
            "available",
            lambda: available_expressions_reference(
                self.graph, WorkCounter()
            ),
        )

    def pavailable(self):
        return self._memo(
            "pavailable",
            lambda: partially_available_expressions_reference(
                self.graph, WorkCounter()
            ),
        )

    def anticipatable(self):
        return self._memo(
            "anticipatable",
            lambda: anticipatable_expressions_reference(
                self.graph, WorkCounter()
            ),
        )

    def loops(self):
        return self._memo("loops", lambda: natural_loops(self.graph))

    def observable_defs(self) -> set[int]:
        """Assignment nodes whose values can reach a print or a branch,
        by transitive closure over def-use chains -- an independent,
        deliberately coarser twin of the DFG mark phase."""

        def build() -> set[int]:
            chains = build_def_use_chains(self.graph, WorkCounter())
            live: set[int] = set()
            stack: list[tuple[int, str]] = []
            for node in self.graph.nodes.values():
                if node.kind in (NodeKind.PRINT, NodeKind.SWITCH):
                    stack.extend((node.id, var) for var in node.uses())
            while stack:
                nid, var = stack.pop()
                for def_node in chains.defs_reaching_use(nid, var):
                    if def_node == self.graph.start or def_node in live:
                        continue
                    live.add(def_node)
                    producer = self.graph.node(def_node)
                    stack.extend(
                        (def_node, used) for used in producer.uses()
                    )
            return live

        return self._memo("observable", build)

    # -- dynamic witnesses -------------------------------------------------

    def probes(self) -> list[tuple[dict[str, int], ExecutionResult]]:
        """Conclusive probe runs of the *original* graph."""

        def build():
            runs = []
            for env in probe_environments(self.graph):
                try:
                    runs.append(
                        (
                            env,
                            run_cfg(
                                self.graph,
                                env,
                                self.max_steps,
                                value_limit=PROBE_VALUE_LIMIT,
                            ),
                        )
                    )
                except InterpError:
                    continue  # non-terminating or faulting: inconclusive
            return runs

        return self._memo("probes", build)

    def splice_preserves_outputs(self, nid: int) -> bool:
        """Differential execution with assignment ``nid`` spliced out of a
        copy: True when every conclusive probe produces identical output.
        Splicing removes evaluations, so it can only *mask* faults -- a
        probe where the original faults was already inconclusive."""
        if nid not in self._splices:
            spliced = self.graph.copy()
            in_edge = spliced.in_edge(nid)
            out_edge = spliced.out_edge(nid)
            spliced.add_edge(in_edge.src, out_edge.dst, label=in_edge.label)
            spliced.remove_node(nid)
            ok = True
            for env, baseline in self.probes():
                try:
                    alt = run_cfg(
                        spliced,
                        env,
                        self.max_steps,
                        value_limit=PROBE_VALUE_LIMIT,
                    )
                except InterpError:
                    ok = False
                    break
                if alt.outputs != baseline.outputs:
                    ok = False
                    break
            self._splices[nid] = ok
        return self._splices[nid]

    def rewrite_preserves_outputs(self, nid: int, new_expr: Expr) -> bool:
        """Differential execution with node ``nid``'s expression replaced
        in a copy: True when every conclusive probe's outputs survive."""
        rewritten = self.graph.copy()
        rewritten.node(nid).expr = new_expr
        for env, baseline in self.probes():
            try:
                alt = run_cfg(
                    rewritten,
                    env,
                    self.max_steps,
                    value_limit=PROBE_VALUE_LIMIT,
                )
            except InterpError:
                return False
            if alt.outputs != baseline.outputs:
                return False
        return True


def _substitute_var(expr: Expr, var: str, replacement: Expr) -> Expr:
    """``expr`` with every read of ``var`` replaced (spans preserved)."""
    if isinstance(expr, Var):
        return replacement if expr.name == var else expr
    if isinstance(expr, UnOp):
        return replace(expr, operand=_substitute_var(expr.operand, var, replacement))
    if isinstance(expr, BinOp):
        return replace(
            expr,
            left=_substitute_var(expr.left, var, replacement),
            right=_substitute_var(expr.right, var, replacement),
        )
    if isinstance(expr, Index):
        array = expr.array
        if array == var and isinstance(replacement, Var):
            array = replacement.name
        return replace(
            expr, array=array, index=_substitute_var(expr.index, var, replacement)
        )
    if isinstance(expr, Update):
        array = expr.array
        if array == var and isinstance(replacement, Var):
            array = replacement.name
        return replace(
            expr,
            array=array,
            index=_substitute_var(expr.index, var, replacement),
            value=_substitute_var(expr.value, var, replacement),
        )
    return expr


def _defs_of_var_reaching(oracle: _Oracle, nid: int, var: str) -> set[int]:
    reach = oracle.reaching()
    found: set[int] = set()
    for edge in oracle.graph.in_edges(nid):
        for def_var, def_node in reach[edge.id]:
            if def_var == var:
                found.add(def_node)
    return found


def _check_use_before_def(oracle: _Oracle, diag: Diagnostic):
    assert diag.var is not None
    defs = _defs_of_var_reaching(oracle, diag.node, diag.var)
    confirmed = defs == {oracle.graph.start}
    refuted = False
    for _env, result in oracle.probes():
        if diag.node not in result.trace:
            continue
        first_use = result.trace.index(diag.node)
        for visited in result.trace[:first_use]:
            node = oracle.graph.node(visited)
            if node.kind is NodeKind.ASSIGN and node.target == diag.var:
                refuted = True
                break
    return confirmed, refuted


def _check_dead_store(oracle: _Oracle, diag: Diagnostic):
    node = oracle.graph.node(diag.node)
    out_edge = oracle.graph.out_edge(diag.node)
    confirmed = node.target not in oracle.liveness()[out_edge.id]
    refuted = confirmed and not oracle.splice_preserves_outputs(diag.node)
    return confirmed and not refuted, refuted


def _check_unreachable(oracle: _Oracle, diag: Diagnostic):
    confirmed = diag.node in oracle.kildall().dead_nodes
    refuted = any(
        diag.node in result.trace for _env, result in oracle.probes()
    )
    return confirmed, refuted


def _check_constant_branch(oracle: _Oracle, diag: Diagnostic):
    data = dict(diag.data)
    value, arm = data.get("value"), data.get("arm")
    confirmed = oracle.kildall().constant_rhs().get(diag.node) == value
    refuted = False
    if arm in ("T", "F"):
        predicted = oracle.graph.switch_edge(diag.node, arm).dst
        for _env, result in oracle.probes():
            trace = result.trace
            for i, visited in enumerate(trace[:-1]):
                if visited == diag.node and trace[i + 1] != predicted:
                    refuted = True
    return confirmed, refuted


def _check_dead_code(oracle: _Oracle, diag: Diagnostic):
    confirmed = diag.node not in oracle.observable_defs()
    refuted = confirmed and not oracle.splice_preserves_outputs(diag.node)
    return confirmed and not refuted, refuted


def _check_self_assign(oracle: _Oracle, diag: Diagnostic):
    node = oracle.graph.node(diag.node)
    confirmed = (
        node.kind is NodeKind.ASSIGN
        and diag.var is not None
        and node.expr == Var(diag.var)
        and node.target == diag.var
    )
    refuted = confirmed and not oracle.splice_preserves_outputs(diag.node)
    return confirmed and not refuted, refuted


def _check_maybe_uninit(oracle: _Oracle, diag: Diagnostic):
    assert diag.var is not None
    defs = _defs_of_var_reaching(oracle, diag.node, diag.var)
    confirmed = oracle.graph.start in defs and len(defs) > 1
    # The claim is a may-property; the only way a witness can contradict
    # it is statically: the entry value does not reach the use at all.
    refuted = oracle.graph.start not in defs
    return confirmed, refuted


def _find_subexpr(node, text: str) -> Expr | None:
    """The first subexpression of the node whose pretty form is ``text``
    (tree order -- the same walk the rule used to pick it)."""
    if node.expr is None:
        return None
    for sub in subexpressions(node.expr):
        if pretty_expr(sub) == text:
            return sub
    return None


def _check_redundant_expr(oracle: _Oracle, diag: Diagnostic):
    sub = _find_subexpr(oracle.graph.node(diag.node), diag.var or "")
    if sub is None:
        return False, False
    eid = oracle.graph.in_edge(diag.node).id
    kind = dict(diag.data).get("kind")
    fully = sub in oracle.available()[eid]
    partially = (
        sub in oracle.pavailable()[eid] and sub in oracle.anticipatable()[eid]
    )
    confirmed = fully if kind == "full" else partially
    # Refuted only when the reference twins reject *both* readings: the
    # expression is not even partially redundant here.
    return confirmed, not (fully or partially)


def _check_loop_invariant(oracle: _Oracle, diag: Diagnostic):
    sub = _find_subexpr(oracle.graph.node(diag.node), diag.var or "")
    if sub is None:
        return False, False
    bodies = [
        body for body in oracle.loops().values() if diag.node in body
    ]
    if not bodies:
        return False, False
    reach = oracle.reaching()
    inside: set[int] = set()
    for edge in oracle.graph.in_edges(diag.node):
        for def_var, def_node in reach[edge.id]:
            if def_var in expr_vars(sub):
                inside.add(def_node)
    # Invariant in *some* enclosing loop: no reaching operand definition
    # sits inside that loop's body.  Static-only -- no refutation probe.
    confirmed = any(
        not (inside & body) for body in bodies
    )
    return confirmed, False


def _check_copy_chain(oracle: _Oracle, diag: Diagnostic):
    assert diag.var is not None
    data = dict(diag.data)
    original, copy_node = data.get("original"), data.get("copy_node")
    if not isinstance(original, str) or not isinstance(copy_node, int):
        return False, False
    at_copy = _defs_of_var_reaching(oracle, copy_node, original)
    at_use = _defs_of_var_reaching(oracle, diag.node, original)
    confirmed = bool(at_copy) and at_copy == at_use
    node = oracle.graph.node(diag.node)
    rewritten = _substitute_var(node.expr, diag.var, Var(original))
    refuted = not oracle.rewrite_preserves_outputs(diag.node, rewritten)
    return confirmed and not refuted, refuted


def _check_tainted_print(oracle: _Oracle, diag: Diagnostic):
    assert diag.var is not None
    confirmed = bool(oracle.taint().use_taint.get((diag.node, diag.var)))
    return confirmed, not confirmed


def _check_empty_range_branch(oracle: _Oracle, diag: Diagnostic):
    from repro.sparse import interval as _iv

    data = dict(diag.data)
    value, arm = data.get("value"), data.get("arm")
    pred = oracle.ranges().switch_values.get(diag.node)
    confirmed = (
        pred is not None
        and not pred.is_empty
        and _iv.truth(pred) is value
    )
    refuted = False
    if arm in ("T", "F"):
        predicted = oracle.graph.switch_edge(diag.node, arm).dst
        for _env, result in oracle.probes():
            trace = result.trace
            for i, visited in enumerate(trace[:-1]):
                if visited == diag.node and trace[i + 1] != predicted:
                    refuted = True
    return confirmed and not refuted, refuted


def _check_range_dead(oracle: _Oracle, diag: Diagnostic):
    dead_edges = oracle.ranges().dead_edges
    graph = oracle.graph
    live = {graph.start}
    stack = [graph.start]
    while stack:
        nid = stack.pop()
        for edge in graph.out_edges(nid):
            if edge.id in dead_edges or edge.dst in live:
                continue
            live.add(edge.dst)
            stack.append(edge.dst)
    owners = frozenset(graph.edge(eid).src for eid in dead_edges)
    controllers = oracle.ntscd().deps.get(diag.node, frozenset())
    confirmed = diag.node not in live and bool(controllers & owners)
    refuted = any(
        diag.node in result.trace for _env, result in oracle.probes()
    )
    return confirmed and not refuted, refuted


_CHECKERS = {
    "R001": _check_use_before_def,
    "R002": _check_maybe_uninit,
    "R003": _check_dead_store,
    "R004": _check_unreachable,
    "R005": _check_constant_branch,
    "R006": _check_dead_code,
    "R007": _check_redundant_expr,
    "R008": _check_loop_invariant,
    "R009": _check_self_assign,
    "R010": _check_copy_chain,
    "R011": _check_tainted_print,
    "R012": _check_empty_range_branch,
    "R013": _check_range_dead,
}


def verify_diagnostics(
    graph: CFG,
    diagnostics,
    max_steps: int = DEFAULT_PROBE_STEPS,
    failures: list[dict] | None = None,
) -> list[Diagnostic]:
    """Confirm or demote every ``definite`` finding, and attach witness
    verdicts to possible/info findings too.

    Returns a new sorted list.  For ``definite`` findings, confirmed ones
    carry ``verified=True``; unconfirmed ones are demoted to ``possible``
    (``demoted=True``, plus ``refuted=True`` when a probe actively
    contradicted the claim).  Possible/info findings with a registered
    checker keep their severity but gain ``verified``/``refuted`` flags.

    A checker that *raises* never crashes the lint run: the finding is
    conservatively demoted (or left unverified) and a structured
    :func:`~repro.robust.errors.error_record` is appended to
    ``failures`` so callers can surface the analysis error through the
    :class:`~repro.robust.errors.ReproError` taxonomy (``repro lint``
    exits 2 with one diagnostic line; the sweep's ``ok`` gate counts
    oracle failures).
    """
    oracle = _Oracle(graph, max_steps)
    out: list[Diagnostic] = []
    for diag in diagnostics:
        checker = _CHECKERS.get(diag.rule)
        if checker is None:
            if diag.severity == "definite":
                out.append(demote(diag))
            else:
                out.append(diag)
            continue
        try:
            confirmed, refuted = checker(oracle, diag)
        except Exception as exc:  # noqa: BLE001 -- route, never crash
            if failures is not None:
                record = error_record(exc)
                record["phase"] = "lint-verify"
                record["pass"] = f"oracle:{diag.rule}"
                failures.append(record)
            if diag.severity == "definite":
                out.append(demote(diag))
            else:
                out.append(replace(diag, verified=False))
            continue
        if diag.severity == "definite":
            if confirmed and not refuted:
                out.append(confirm(diag))
            else:
                out.append(demote(diag, refuted=refuted))
        else:
            out.append(
                replace(diag, verified=confirmed and not refuted, refuted=refuted)
            )
    return sorted_diagnostics(out)
