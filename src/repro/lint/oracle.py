"""The verifier behind the zero-false-positive guarantee.

Every ``definite`` finding must be *confirmed* by an independent witness
-- an analysis that shares no code with the rule that produced it -- and
must survive *dynamic refutation probes*: concrete interpreter runs that
would expose a wrong claim.  A finding that cannot be confirmed is
demoted to ``possible``; a finding a probe actively contradicts is
additionally marked ``refuted`` (a measured false positive, the quantity
``repro lintsweep`` drives to zero over the corpus).

Witness table (rules produced by DFG-side analyses are checked by
CFG-side ones and vice versa):

========  ==========================================  =====================
rule      static confirmation                         dynamic probe
========  ==========================================  =====================
R001      reference reaching definitions               no probe trace assigns
          (generic solver): only the entry             the variable before the
          definition reaches the use                   use executes
R003      reference liveness: target dead on the       splicing the assignment
          out-edge                                     out preserves outputs
R004      Kildall vector constant propagation          no probe trace visits
          marks the node dead                          the node
R005      Kildall constant propagation computes        every probe takes the
          the same constant predicate                  predicted arm
R006      def-use closure from prints/branches         splicing the assignment
          never demands the definition                 out preserves outputs
R009      right-hand side is exactly the target        splicing the assignment
                                                       out preserves outputs
========  ==========================================  =====================

Probes run the program under several entry environments (empty, all-1s,
all-2s, alternating).  A probe that raises -- step-limit blowout on a
non-terminating program, division by zero -- is *inconclusive* and
simply skipped: it neither confirms nor refutes.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.cfg.interp import run_cfg
from repro.dataflow.liveness import live_variables_reference
from repro.dataflow.reaching import reaching_definitions_reference
from repro.defuse.chains import build_def_use_chains
from repro.lang.ast_nodes import Var
from repro.lang.errors import InterpError
from repro.lang.interp import ExecutionResult
from repro.lint.model import Diagnostic, confirm, demote, sorted_diagnostics
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.util.counters import WorkCounter

#: Step budget per probe run; corpus programs are small, so a blowout
#: means non-termination, which the probes treat as inconclusive.
DEFAULT_PROBE_STEPS = 20_000

#: Magnitude cap on probe values: a generated loop that squares a
#: variable each iteration produces bigints whose arithmetic dwarfs the
#: step budget, so probes abort (inconclusively) once a value passes
#: this bound.
PROBE_VALUE_LIMIT = 10**18


def probe_environments(graph: CFG) -> list[dict[str, int]]:
    """Deterministic entry environments for the refutation probes."""
    names = sorted(graph.variables())
    return [
        {},
        {name: 1 for name in names},
        {name: 2 for name in names},
        {name: (7 if i % 2 else 0) for i, name in enumerate(names)},
    ]


class _Oracle:
    """Lazily-built witnesses shared across one verification batch."""

    def __init__(self, graph: CFG, max_steps: int) -> None:
        self.graph = graph
        self.max_steps = max_steps
        self._cache: dict[str, object] = {}
        self._splices: dict[int, bool] = {}

    def _memo(self, key: str, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    # -- static witnesses --------------------------------------------------

    def reaching(self):
        return self._memo(
            "reaching",
            lambda: reaching_definitions_reference(self.graph, WorkCounter()),
        )

    def liveness(self):
        return self._memo(
            "liveness",
            lambda: live_variables_reference(self.graph, counter=WorkCounter()),
        )

    def kildall(self):
        return self._memo(
            "kildall",
            lambda: cfg_constant_propagation(self.graph, WorkCounter()),
        )

    def observable_defs(self) -> set[int]:
        """Assignment nodes whose values can reach a print or a branch,
        by transitive closure over def-use chains -- an independent,
        deliberately coarser twin of the DFG mark phase."""

        def build() -> set[int]:
            chains = build_def_use_chains(self.graph, WorkCounter())
            live: set[int] = set()
            stack: list[tuple[int, str]] = []
            for node in self.graph.nodes.values():
                if node.kind in (NodeKind.PRINT, NodeKind.SWITCH):
                    stack.extend((node.id, var) for var in node.uses())
            while stack:
                nid, var = stack.pop()
                for def_node in chains.defs_reaching_use(nid, var):
                    if def_node == self.graph.start or def_node in live:
                        continue
                    live.add(def_node)
                    producer = self.graph.node(def_node)
                    stack.extend(
                        (def_node, used) for used in producer.uses()
                    )
            return live

        return self._memo("observable", build)

    # -- dynamic witnesses -------------------------------------------------

    def probes(self) -> list[tuple[dict[str, int], ExecutionResult]]:
        """Conclusive probe runs of the *original* graph."""

        def build():
            runs = []
            for env in probe_environments(self.graph):
                try:
                    runs.append(
                        (
                            env,
                            run_cfg(
                                self.graph,
                                env,
                                self.max_steps,
                                value_limit=PROBE_VALUE_LIMIT,
                            ),
                        )
                    )
                except InterpError:
                    continue  # non-terminating or faulting: inconclusive
            return runs

        return self._memo("probes", build)

    def splice_preserves_outputs(self, nid: int) -> bool:
        """Differential execution with assignment ``nid`` spliced out of a
        copy: True when every conclusive probe produces identical output.
        Splicing removes evaluations, so it can only *mask* faults -- a
        probe where the original faults was already inconclusive."""
        if nid not in self._splices:
            spliced = self.graph.copy()
            in_edge = spliced.in_edge(nid)
            out_edge = spliced.out_edge(nid)
            spliced.add_edge(in_edge.src, out_edge.dst, label=in_edge.label)
            spliced.remove_node(nid)
            ok = True
            for env, baseline in self.probes():
                try:
                    alt = run_cfg(
                        spliced,
                        env,
                        self.max_steps,
                        value_limit=PROBE_VALUE_LIMIT,
                    )
                except InterpError:
                    ok = False
                    break
                if alt.outputs != baseline.outputs:
                    ok = False
                    break
            self._splices[nid] = ok
        return self._splices[nid]


def _defs_of_var_reaching(oracle: _Oracle, nid: int, var: str) -> set[int]:
    reach = oracle.reaching()
    found: set[int] = set()
    for edge in oracle.graph.in_edges(nid):
        for def_var, def_node in reach[edge.id]:
            if def_var == var:
                found.add(def_node)
    return found


def _check_use_before_def(oracle: _Oracle, diag: Diagnostic):
    assert diag.var is not None
    defs = _defs_of_var_reaching(oracle, diag.node, diag.var)
    confirmed = defs == {oracle.graph.start}
    refuted = False
    for _env, result in oracle.probes():
        if diag.node not in result.trace:
            continue
        first_use = result.trace.index(diag.node)
        for visited in result.trace[:first_use]:
            node = oracle.graph.node(visited)
            if node.kind is NodeKind.ASSIGN and node.target == diag.var:
                refuted = True
                break
    return confirmed, refuted


def _check_dead_store(oracle: _Oracle, diag: Diagnostic):
    node = oracle.graph.node(diag.node)
    out_edge = oracle.graph.out_edge(diag.node)
    confirmed = node.target not in oracle.liveness()[out_edge.id]
    refuted = confirmed and not oracle.splice_preserves_outputs(diag.node)
    return confirmed and not refuted, refuted


def _check_unreachable(oracle: _Oracle, diag: Diagnostic):
    confirmed = diag.node in oracle.kildall().dead_nodes
    refuted = any(
        diag.node in result.trace for _env, result in oracle.probes()
    )
    return confirmed, refuted


def _check_constant_branch(oracle: _Oracle, diag: Diagnostic):
    data = dict(diag.data)
    value, arm = data.get("value"), data.get("arm")
    confirmed = oracle.kildall().constant_rhs().get(diag.node) == value
    refuted = False
    if arm in ("T", "F"):
        predicted = oracle.graph.switch_edge(diag.node, arm).dst
        for _env, result in oracle.probes():
            trace = result.trace
            for i, visited in enumerate(trace[:-1]):
                if visited == diag.node and trace[i + 1] != predicted:
                    refuted = True
    return confirmed, refuted


def _check_dead_code(oracle: _Oracle, diag: Diagnostic):
    confirmed = diag.node not in oracle.observable_defs()
    refuted = confirmed and not oracle.splice_preserves_outputs(diag.node)
    return confirmed and not refuted, refuted


def _check_self_assign(oracle: _Oracle, diag: Diagnostic):
    node = oracle.graph.node(diag.node)
    confirmed = (
        node.kind is NodeKind.ASSIGN
        and diag.var is not None
        and node.expr == Var(diag.var)
        and node.target == diag.var
    )
    refuted = confirmed and not oracle.splice_preserves_outputs(diag.node)
    return confirmed and not refuted, refuted


_CHECKERS = {
    "R001": _check_use_before_def,
    "R003": _check_dead_store,
    "R004": _check_unreachable,
    "R005": _check_constant_branch,
    "R006": _check_dead_code,
    "R009": _check_self_assign,
}


def verify_diagnostics(
    graph: CFG,
    diagnostics,
    max_steps: int = DEFAULT_PROBE_STEPS,
) -> list[Diagnostic]:
    """Confirm or demote every ``definite`` finding.

    Returns a new sorted list: confirmed findings carry
    ``verified=True``; unconfirmed ones are demoted to ``possible``
    (``demoted=True``, plus ``refuted=True`` when a probe actively
    contradicted the claim).  Non-definite findings pass through
    untouched.
    """
    oracle = _Oracle(graph, max_steps)
    out: list[Diagnostic] = []
    for diag in diagnostics:
        if diag.severity != "definite":
            out.append(diag)
            continue
        checker = _CHECKERS.get(diag.rule)
        if checker is None:
            out.append(demote(diag))
            continue
        confirmed, refuted = checker(oracle, diag)
        if confirmed and not refuted:
            out.append(confirm(diag))
        else:
            out.append(demote(diag, refuted=refuted))
    return sorted_diagnostics(out)
