"""A hardened process supervisor for the batch driver.

``multiprocessing.Pool.map`` has exactly the failure modes a batch
analysis service cannot afford: one raising task used to poison its
whole chunk, a hung worker stalls the pool forever, and a crashed worker
(hard exit, OOM kill) deadlocks the join.  This supervisor runs **one
program per worker process** and owns the full lifecycle:

* a per-program wall-clock deadline (the pool default, overridable per
  spec via ``timeout_s``) -- an overrunning worker is terminated (then
  killed) and the attempt is recorded as a ``worker-timeout`` incident;
* crash isolation -- a worker that dies without reporting becomes a
  ``worker-crash`` incident, never a hang;
* bounded retry with deterministic exponential backoff, scheduled so a
  waiting retry never blocks other live workers;
* quarantine -- a program that exhausts its retries gets a structured
  record (and, for deterministic in-worker failures, a delta-debugged
  minimized repro) instead of killing the run.

Workers receive plain spec dicts and resolve everything inside their own
interpreter (spawn-safe, same contract as PR 2's chunked pool).
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.robust.errors import error_record
from repro.robust.incidents import IncidentLog
from repro.robust.watchdog import Backoff

#: How long the supervisor dozes when every live worker is mid-flight.
_POLL_S = 0.01


def _pool_worker(spec: dict, conn) -> None:
    """Worker entry point (top-level: spawn must import it by name)."""
    from repro.perf.batch import _analyze_one

    try:
        row = _analyze_one(spec)
    except BaseException as exc:  # _analyze_one already catches; belt+braces
        row = {"label": spec.get("label"), "error": error_record(exc)}
    try:
        conn.send(row)
    finally:
        conn.close()


@dataclass
class _Attempt:
    index: int
    spec: dict
    attempt: int = 0
    ready_at: float = 0.0
    failures: list[dict] = field(default_factory=list)


class SupervisedPool:
    """Run specs across supervised single-program worker processes."""

    def __init__(
        self,
        workers: int,
        timeout_s: float | None = None,
        retries: int = 1,
        backoff: Backoff = Backoff(base_s=0.05, max_s=1.0),
        incidents: IncidentLog | None = None,
        minimizer: Callable[[dict, dict], dict | None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.workers = max(1, workers)
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff = backoff
        self.incidents = incidents if incidents is not None else IncidentLog()
        #: ``minimizer(spec, failure_record) -> quarantine dict | None``;
        #: invoked only for deterministic in-worker failures.
        self.minimizer = minimizer
        self._clock = clock
        self._sleep = sleep
        self.stats = {
            "spawned": 0, "timeouts": 0, "crashes": 0,
            "retries": 0, "quarantined": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def run(self, specs: list[dict]) -> list[dict]:
        """Analyze every spec; returns one row per spec, in spec order.

        A row is either a worker-produced analysis row, a worker-produced
        per-spec error row, or -- after retries are exhausted -- a
        quarantine row.  The supervisor itself never raises on worker
        misbehavior.
        """
        ctx = multiprocessing.get_context("spawn")
        pending: deque[_Attempt] = deque(
            _Attempt(i, spec) for i, spec in enumerate(specs)
        )
        live: dict[int, tuple] = {}
        results: dict[int, dict] = {}

        while pending or live:
            self._spawn_ready(ctx, pending, live)
            progressed = self._poll(live, pending, results)
            if not progressed and (live or pending):
                self._sleep(_POLL_S)
        return [results[i] for i in range(len(specs))]

    def _spawn_ready(self, ctx, pending, live) -> None:
        now = self._clock()
        for _ in range(len(pending)):
            if len(live) >= self.workers:
                break
            task = pending.popleft()
            if task.ready_at > now:
                pending.append(task)  # not due yet; rotate
                continue
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_pool_worker, args=(task.spec, send), daemon=True
            )
            proc.start()
            send.close()  # parent keeps only the receiving end
            self.stats["spawned"] += 1
            budget = task.spec.get("timeout_s", self.timeout_s)
            deadline = now + budget if budget is not None else None
            live[task.index] = (proc, recv, deadline, task)

    def _poll(self, live, pending, results) -> bool:
        progressed = False
        now = self._clock()
        for index in list(live):
            proc, recv, deadline, task = live[index]
            finished = failure = None
            if recv.poll(0):
                try:
                    finished = recv.recv()
                except EOFError:
                    failure = self._crash_record(task, proc)
            elif deadline is not None and now >= deadline:
                self._terminate(proc)
                budget = task.spec.get("timeout_s", self.timeout_s)
                failure = {
                    "kind": "worker-timeout",
                    "error": {
                        "type": "PassTimeout",
                        "message": (
                            f"worker exceeded {budget:.3f}s budget"
                        ),
                    },
                }
                self.stats["timeouts"] += 1
                self.incidents.record(
                    "worker-timeout",
                    phase="batch-worker",
                    label=task.spec.get("label"),
                    attempt=task.attempt,
                )
            elif not proc.is_alive():
                # Died without reporting: EOF may still be buffered.
                if recv.poll(0.05):
                    try:
                        finished = recv.recv()
                    except EOFError:
                        failure = self._crash_record(task, proc)
                else:
                    failure = self._crash_record(task, proc)
            else:
                continue

            progressed = True
            del live[index]
            recv.close()
            if proc.is_alive():
                proc.join(timeout=1.0)
            if finished is not None and "error" in finished:
                # The worker survived but the spec failed deterministically.
                failure = {"kind": "spec-error", "error": finished["error"]}
                finished = None
            if finished is not None:
                results[index] = finished
            else:
                task.failures.append(failure)
                self._handle_failure(task, failure, pending, results)
        return progressed

    # -- failure handling --------------------------------------------------

    def _crash_record(self, task: _Attempt, proc) -> dict:
        self.stats["crashes"] += 1
        self.incidents.record(
            "worker-crash",
            phase="batch-worker",
            label=task.spec.get("label"),
            exitcode=proc.exitcode,
            attempt=task.attempt,
        )
        return {
            "kind": "worker-crash",
            "error": {
                "type": "WorkerCrash",
                "message": f"worker exited with code {proc.exitcode} "
                           f"before reporting a result",
            },
        }

    def _handle_failure(self, task, failure, pending, results) -> None:
        if task.attempt < self.retries:
            self.stats["retries"] += 1
            self.incidents.record(
                "retry",
                phase="batch-worker",
                label=task.spec.get("label"),
                attempt=task.attempt,
                failure=failure["kind"],
            )
            delay = self.backoff.delay(task.attempt)
            task.attempt += 1
            task.ready_at = self._clock() + delay
            pending.append(task)
            return
        self.stats["quarantined"] += 1
        quarantine = None
        if self.minimizer is not None and failure["kind"] == "spec-error":
            quarantine = self.minimizer(task.spec, failure["error"])
        self.incidents.record(
            "quarantine",
            phase="batch-worker",
            label=task.spec.get("label"),
            attempts=task.attempt + 1,
            failure=failure["kind"],
        )
        results[task.index] = {
            "label": task.spec.get("label"),
            "error": failure["error"],
            "failure": failure["kind"],
            "attempts": task.attempt + 1,
            "quarantined": True,
            "quarantine": quarantine,
            "failures": task.failures,
        }

    @staticmethod
    def _terminate(proc) -> None:
        proc.terminate()
        proc.join(timeout=1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)
