"""A delta-debugging minimizer for failing programs.

When the batch driver or the chaos harness quarantines a poison program,
shipping the original 80-statement generated program as the repro is
hostile to whoever debugs it.  :func:`minimize_program` shrinks the
program with the classic ddmin loop of Zeller & Hildebrandt
(*Simplifying and Isolating Failure-Inducing Input*): remove
chunks of statements at doubling granularity while the caller's
``fails`` predicate keeps holding, then additionally try replacing each
compound statement (``if``/``while``/``repeat``) with its own body.

The predicate receives a parsed :class:`~repro.lang.ast_nodes.Program`
and must return True only when the candidate still fails *the same way*
-- candidates that fail to parse, build, or that fail differently count
as passing, which is what keeps the minimizer from wandering onto a
different bug.  Work is bounded by ``budget`` predicate evaluations.
"""

from __future__ import annotations

from typing import Callable

from repro.lang.ast_nodes import If, Program, Repeat, Stmt, While
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program

Predicate = Callable[[Program], bool]


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _holds(stmts: list[Stmt], fails: Predicate, budget: _Budget) -> bool:
    """Does the candidate still fail?  Non-reproducing candidates --
    including ones that no longer parse/build -- count as False."""
    if not budget.take():
        return False
    try:
        # Round-trip through the pretty-printer so the minimized artifact
        # is guaranteed to be re-parseable source, not just an AST.
        candidate = parse_program(pretty_program(Program(list(stmts))))
        return bool(fails(candidate))
    except Exception:
        return False


def _ddmin(
    stmts: list[Stmt], fails: Predicate, budget: _Budget
) -> list[Stmt]:
    """Classic ddmin over a statement list."""
    granularity = 2
    while len(stmts) >= 2:
        chunk = max(1, len(stmts) // granularity)
        reduced = False
        start = 0
        while start < len(stmts):
            candidate = stmts[:start] + stmts[start + chunk:]
            if candidate and _holds(candidate, fails, budget):
                stmts = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-scan from the start of the shrunken list.
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(stmts):
                break
            granularity = min(len(stmts), granularity * 2)
        if budget.spent >= budget.limit:
            break
    return stmts


def _flatten_compounds(
    stmts: list[Stmt], fails: Predicate, budget: _Budget
) -> list[Stmt]:
    """Try replacing each compound statement with its own body (or, for
    ``if``, either arm) -- the structural shrink ddmin's chunk removal
    cannot express."""
    changed = True
    while changed and budget.spent < budget.limit:
        changed = False
        for i, stmt in enumerate(stmts):
            replacements: list[list[Stmt]] = []
            if isinstance(stmt, If):
                replacements = [stmt.then_body, stmt.else_body, []]
            elif isinstance(stmt, While):
                replacements = [stmt.body, []]
            elif isinstance(stmt, Repeat):
                replacements = [stmt.body, []]
            for body in replacements:
                candidate = stmts[:i] + list(body) + stmts[i + 1:]
                if candidate and _holds(candidate, fails, budget):
                    stmts = candidate
                    changed = True
                    break
            if changed:
                break
    return stmts


def minimize_program(
    source: str, fails: Predicate, budget: int = 400
) -> tuple[str, int]:
    """Shrink ``source`` to a smaller program that still satisfies
    ``fails``; returns ``(minimized_source, predicate_evaluations)``.

    If the original program does not satisfy ``fails`` (or does not
    parse), it is returned unchanged -- the caller quarantines what it
    has.
    """
    spent = _Budget(budget)
    try:
        program = parse_program(source)
    except Exception:
        return source, spent.spent
    if not _holds(program.body, fails, spent):
        return source, spent.spent
    stmts = _ddmin(list(program.body), fails, spent)
    stmts = _flatten_compounds(stmts, fails, spent)
    stmts = _ddmin(stmts, fails, spent)
    return pretty_program(Program(stmts)), spent.spent
