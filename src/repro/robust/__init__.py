"""The fault-tolerant analysis runtime.

Everything the surrounding system needs to fail *well*:

* :mod:`repro.robust.errors` -- the error taxonomy (:class:`ReproError`
  and friends) plus stable graph fingerprints for diagnostics;
* :mod:`repro.robust.validate` -- the CFG well-formedness validator that
  turns malformed inputs into one precise :class:`InputError`;
* :mod:`repro.robust.incidents` -- structured ``repro.incident/1``
  records of every degradation the runtime performed;
* :mod:`repro.robust.watchdog` -- deadlines, bounded retry with backoff,
  and the injectable clocks that keep all of it testable;
* :mod:`repro.robust.fallback` -- the degradation policy: when a fast
  kernel fails (or fails a cross-check), fall back to its
  ``*_reference`` oracle and keep going;
* :mod:`repro.robust.minimize` -- the delta-debugging minimizer that
  shrinks a failing program into a checked-in repro artifact;
* :mod:`repro.robust.pool` -- the hardened process supervisor behind
  ``repro batch`` (per-program watchdog, crash isolation, replenishment);
* :mod:`repro.robust.chaos` -- the deterministic fault-injection harness
  behind ``repro chaos``.
"""

from repro.robust.errors import (
    AnalysisError,
    InputError,
    PassTimeout,
    ReproError,
    StaleSnapshotError,
    error_record,
    graph_fingerprint,
)
from repro.robust.fallback import DegradationPolicy, default_oracles
from repro.robust.incidents import INCIDENT_SCHEMA, Incident, IncidentLog
from repro.robust.validate import cfg_violations, check_cfg
from repro.robust.watchdog import (
    Backoff,
    Deadline,
    FakeClock,
    retry_with_backoff,
)

__all__ = [
    "AnalysisError",
    "Backoff",
    "Deadline",
    "DegradationPolicy",
    "FakeClock",
    "INCIDENT_SCHEMA",
    "Incident",
    "IncidentLog",
    "InputError",
    "PassTimeout",
    "ReproError",
    "StaleSnapshotError",
    "cfg_violations",
    "check_cfg",
    "default_oracles",
    "error_record",
    "graph_fingerprint",
    "retry_with_backoff",
]
