"""Structured incident records (schema ``repro.incident/1``).

Every time the runtime degrades -- a fast kernel fell back to its
oracle, a cross-check caught a corrupted result, a pass timed out, a
batch worker was replaced, a program was quarantined -- an
:class:`Incident` is appended to the run's :class:`IncidentLog` and a
``incident:<kind>`` work counter is ticked on the shared
:class:`~repro.util.metrics.Metrics`, so degradations show up both as
auditable JSON and in every profile/trace payload's work totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.util.metrics import Metrics

INCIDENT_SCHEMA = "repro.incident/1"

#: The incident vocabulary.  ``oracle-fallback`` and ``timeout-fallback``
#: are recoveries; ``cross-check-mismatch`` is a recovery that *caught a
#: wrong answer*; ``cache-corrupt`` is a recovery in the serve cache (a
#: damaged entry was evicted and recomputed); the rest record failures
#: the runtime contained.
KINDS = (
    "oracle-fallback",
    "timeout-fallback",
    "cross-check-mismatch",
    "oracle-failed",
    "unrecovered",
    "validation",
    "worker-timeout",
    "worker-crash",
    "retry",
    "quarantine",
    "cache-corrupt",
)


@dataclass(frozen=True)
class Incident:
    """One degradation event."""

    seq: int
    kind: str
    pass_name: str | None = None
    phase: str | None = None
    fingerprint: str | None = None
    recovered: bool = False
    error: dict | None = None
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "schema": INCIDENT_SCHEMA,
            "seq": self.seq,
            "kind": self.kind,
            "pass": self.pass_name,
            "phase": self.phase,
            "fingerprint": self.fingerprint,
            "recovered": self.recovered,
            "error": self.error,
            "detail": dict(self.detail),
        }


class IncidentLog:
    """An append-only log of incidents, optionally mirrored to metrics.

    >>> log = IncidentLog()
    >>> _ = log.record("oracle-fallback", pass_name="dom", recovered=True)
    >>> log.count("oracle-fallback"), log.count("quarantine")
    (1, 0)
    """

    def __init__(self, metrics: "Metrics | None" = None) -> None:
        self.incidents: list[Incident] = []
        self.metrics = metrics

    def record(
        self,
        kind: str,
        pass_name: str | None = None,
        phase: str | None = None,
        fingerprint: str | None = None,
        recovered: bool = False,
        error: dict | None = None,
        **detail: object,
    ) -> Incident:
        if kind not in KINDS:
            raise ValueError(f"unknown incident kind {kind!r}")
        incident = Incident(
            seq=len(self.incidents),
            kind=kind,
            pass_name=pass_name,
            phase=phase,
            fingerprint=fingerprint,
            recovered=recovered,
            error=error,
            detail=detail,
        )
        self.incidents.append(incident)
        if self.metrics is not None:
            self.metrics.record_incident(incident.as_dict())
        return incident

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.incidents)
        return sum(1 for i in self.incidents if i.kind == kind)

    def as_dicts(self) -> list[dict]:
        return [incident.as_dict() for incident in self.incidents]

    def __iter__(self) -> Iterator[Incident]:
        return iter(self.incidents)

    def __len__(self) -> int:
        return len(self.incidents)
