"""The deterministic fault-injection harness behind ``repro chaos``.

Trusting a fallback path that has never fired is how robustness code
rots.  This harness *makes* every path fire: for each program of a
suite it plans a seeded set of faults -- injected exceptions, virtual
delays, corrupted intermediate results -- against registered analysis
passes, runs the program through an
:class:`~repro.pipeline.manager.AnalysisManager` carrying a
:class:`~repro.robust.fallback.DegradationPolicy`, and then holds the
runtime to its contract:

* a fault in an oracle-backed pass must be *recovered* (oracle
  fallback / cross-check substitution / timeout fallback) and the run's
  results must be identical to a clean, uninjected run;
* a fault in a pass with no oracle must end in *quarantine*: a
  structured record plus a delta-debugged minimized repro.

Everything is deterministic: fault plans derive from SHA-256 of
``(seed, program index, label)``, delays advance a
:class:`~repro.robust.watchdog.FakeClock` rather than sleeping, and the
``repro.chaos/1`` payload contains no wall-clock fields -- the same seed
produces the same payload, byte for byte.

The per-program guaranteed fault rotates through the pass registry
(program ``i`` always faults pass ``i mod n``), so any suite of at
least ``n`` programs exercises every registered pass; extra random
faults land only on oracle-backed passes, which keeps them recoverable
and the guaranteed target reachable.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass
from typing import Mapping

from repro.robust.errors import (
    ReproError,
    error_record,
    graph_fingerprint,
)
from repro.robust.fallback import (
    DegradationPolicy,
    default_oracles,
    results_equal,
)
from repro.robust.incidents import IncidentLog
from repro.robust.minimize import minimize_program
from repro.robust.watchdog import Deadline, FakeClock

CHAOS_SCHEMA = "repro.chaos/1"
QUARANTINE_SCHEMA = "repro.quarantine/1"

#: Virtual seconds: per-program pass deadline, and how long an injected
#: delay stalls.  The delay must exceed the budget so every delay fault
#: trips the watchdog.
DEFAULT_BUDGET_S = 1.0
DELAY_S = 2.0


class ChaosFault(RuntimeError):
    """The exception an injected ``raise`` fault throws inside a pass."""


@dataclass(frozen=True)
class Fault:
    """One planned fault against one pass."""

    pass_name: str
    kind: str  # "raise" | "delay" | "corrupt"
    delay_s: float = 0.0

    def as_dict(self) -> dict:
        return {"pass": self.pass_name, "kind": self.kind}


def derive_seed(seed: int, label: str) -> int:
    """A stable per-program RNG seed, independent of hash randomization."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def corrupt_result(result: object) -> object:
    """Deterministically damage a pass result in place.

    Shape-aware so the damaged value still *looks like* the right type
    (the cross-check comparator must be able to inspect it): drop a dict
    entry, orphan a dominator-tree node, reverse a DFS ordering, drop a
    SESE region.  Falls back to raising :class:`ChaosFault` for shapes
    it does not know how to damage plausibly.
    """
    if isinstance(result, dict):
        if result:
            del result[next(iter(result))]
        else:
            result["__chaos__"] = True  # type: ignore[index]
        return result
    idom = getattr(result, "idom", None)
    if isinstance(idom, dict):
        for key, value in idom.items():
            if value is not None:
                del idom[key]
                break
        return result
    preorder = getattr(result, "preorder", None)
    if isinstance(preorder, list):
        result.preorder = list(reversed(preorder))  # type: ignore[attr-defined]
        return result
    regions = getattr(result, "regions", None)
    if isinstance(regions, list) and regions:
        result.regions = regions[:-1]  # type: ignore[attr-defined]
        return result
    raise ChaosFault("injected corruption (shape not corruptible)")


class FaultInjector:
    """Applies a fault plan; implements the hook
    :class:`~repro.robust.fallback.DegradationPolicy` calls.

    Each planned fault triggers at most once (the first time its pass
    body runs); ``triggered`` records the faults that actually fired, in
    execution order.
    """

    def __init__(
        self, plan: Mapping[str, Fault], clock: FakeClock | None = None
    ) -> None:
        self.plan = dict(plan)
        self.clock = clock
        self.triggered: list[Fault] = []

    def fault_for(self, pass_name: str) -> Fault | None:
        return self.plan.get(pass_name)

    def apply(self, fault, spec, graph, deps, counter):
        del self.plan[fault.pass_name]
        self.triggered.append(fault)
        if fault.kind == "raise":
            raise ChaosFault(
                f"injected failure in pass {fault.pass_name!r}"
            )
        if fault.kind == "delay":
            if self.clock is not None:
                self.clock.advance(fault.delay_s)
            else:
                time.sleep(fault.delay_s)
            return spec.build(graph, deps, counter)
        if fault.kind == "corrupt":
            return corrupt_result(spec.build(graph, deps, counter))
        raise ValueError(f"unknown fault kind {fault.kind!r}")


def make_plan(
    seed: int,
    index: int,
    label: str,
    pass_names: list[str],
    oracle_names: frozenset[str],
    extra_rate: float = 0.25,
    forced: tuple[str, ...] = (),
) -> dict[str, Fault]:
    """The seeded fault plan for program ``index`` of a chaos run.

    One *guaranteed* fault rotates through ``pass_names`` so a suite of
    >= ``len(pass_names)`` programs covers every pass; when the suite is
    *shorter* than the registry, the harness distributes the leftover
    passes as ``forced`` secondary targets onto programs whose primary
    target is oracle-backed (those recover, so the run reaches the
    secondary).  Extra faults are sprinkled only on oracle-backed
    passes: those always recover, so they can never abort the run
    before the guaranteed target executes.
    """
    rng = random.Random(derive_seed(seed, f"{index}:{label}"))
    targets = [pass_names[index % len(pass_names)]]
    for name in forced:
        if name not in targets:
            targets.append(name)
    plan: dict[str, Fault] = {}
    for name in sorted(oracle_names & set(pass_names)):
        if name not in targets and rng.random() < extra_rate:
            kind = rng.choice(("raise", "corrupt", "delay"))
            plan[name] = Fault(name, kind, DELAY_S if kind == "delay" else 0.0)
    for target in targets:
        if target in oracle_names:
            kind = rng.choice(("raise", "corrupt", "delay"))
        else:
            # Unrecoverable on purpose: exercises quarantine + minimization.
            kind = rng.choice(("raise", "delay"))
        plan[target] = Fault(target, kind, DELAY_S if kind == "delay" else 0.0)
    return plan


# -- the harness -------------------------------------------------------------


def _build_spec_program(spec: dict):
    from repro.perf.batch import resolve_family

    return resolve_family(spec["family"])(*spec["args"])


def _chaos_manager(graph, plan, budget_s):
    """A manager wired for one injected run; returns (manager, injector,
    incident log)."""
    from repro.pipeline.manager import AnalysisManager
    from repro.util.metrics import Metrics

    clock = FakeClock()
    log = IncidentLog()
    injector = FaultInjector(plan, clock)
    policy = DegradationPolicy(
        incidents=log,
        cross_check=True,
        deadline=Deadline(budget_s, clock=clock.now),
        injector=injector,
    )
    manager = AnalysisManager(graph, metrics=Metrics(), policy=policy)
    return manager, injector, log


def _quarantine(
    spec: dict,
    source: str,
    exc: ReproError,
    plan: dict[str, Fault],
    budget_s: float,
    minimize_budget: int,
) -> dict:
    """Build the quarantine record, minimizing the failing program."""
    from repro.cfg.builder import build_cfg

    def fails(candidate) -> bool:
        graph = build_cfg(candidate)
        manager, _, _ = _chaos_manager(graph, plan, budget_s)
        try:
            manager.run_all()
        except ReproError as candidate_exc:
            return (
                type(candidate_exc) is type(exc)
                and candidate_exc.pass_name == exc.pass_name
            )
        return False

    minimized, evals = minimize_program(
        source, fails, budget=minimize_budget
    )
    return {
        "schema": QUARANTINE_SCHEMA,
        "label": spec["label"],
        "family": spec["family"],
        "args": list(spec["args"]),
        "error": error_record(exc),
        "plan": [fault.as_dict() for fault in plan.values()],
        "source": source,
        "minimized_source": minimized,
        "original_stmts": source.count("\n"),
        "minimized_stmts": minimized.count("\n"),
        "predicate_evals": evals,
    }


def run_chaos(
    suite: list[dict] | None = None,
    seed: int = 0,
    smoke: bool = False,
    budget_s: float = DEFAULT_BUDGET_S,
    extra_rate: float = 0.25,
    minimize_budget: int = 200,
    quarantine_dir: str | None = None,
) -> dict:
    """Run the fault-injection sweep; return the ``repro.chaos/1`` payload.

    ``payload["ok"]`` is True iff every program with a triggered fault
    was either recovered with results identical to its clean run, or
    quarantined with a minimized repro -- the acceptance contract.
    """
    from repro.cfg.builder import build_cfg
    from repro.lang.pretty import pretty_program
    from repro.perf.batch import equivalence_suite
    from repro.pipeline.manager import AnalysisManager
    from repro.pipeline.passes import default_registry
    from repro.util.metrics import Metrics

    if suite is None:
        suite = equivalence_suite(smoke=smoke)
    pass_names = default_registry().names()
    oracle_names = frozenset(default_oracles())

    # A suite shorter than the registry cannot cover every pass by
    # rotation alone: hand the leftover passes out as secondary targets
    # on programs whose primary fault recovers (oracle-backed), so the
    # run survives long enough to trigger them.
    forced_by_index: dict[int, tuple[str, ...]] = {}
    hosts = [
        i for i in range(len(suite))
        if pass_names[i % len(pass_names)] in oracle_names
    ]
    if len(suite) < len(pass_names) and hosts:
        leftover = pass_names[len(suite):]
        assignments: dict[int, list[str]] = {}
        for k, name in enumerate(leftover):
            assignments.setdefault(hosts[k % len(hosts)], []).append(name)
        forced_by_index = {
            i: tuple(names) for i, names in assignments.items()
        }

    rows: list[dict] = []
    triggered_passes: set[str] = set()
    quarantine_records: list[dict] = []
    for index, spec in enumerate(suite):
        program = _build_spec_program(spec)
        source = pretty_program(program)
        graph = build_cfg(program)
        clean = AnalysisManager(graph, metrics=Metrics()).run_all()

        plan = make_plan(
            seed, index, spec["label"], pass_names, oracle_names, extra_rate,
            forced=forced_by_index.get(index, ()),
        )
        manager, injector, log = _chaos_manager(graph, dict(plan), budget_s)
        row: dict = {
            "label": spec["label"],
            "fingerprint": graph_fingerprint(graph),
            "planned": [fault.as_dict() for fault in plan.values()],
        }
        try:
            results = manager.run_all()
        except ReproError as exc:
            record = _quarantine(
                spec, source, exc, plan, budget_s, minimize_budget
            )
            quarantine_records.append(record)
            row.update(
                outcome="quarantined",
                identical=None,
                error=error_record(exc),
                quarantine={
                    key: record[key]
                    for key in (
                        "minimized_source",
                        "minimized_stmts",
                        "original_stmts",
                        "predicate_evals",
                    )
                },
            )
        else:
            identical = all(
                results_equal(name, results[name], clean[name])
                for name in pass_names
            )
            row.update(
                outcome="recovered" if injector.triggered else "clean",
                identical=identical,
            )
        row["injected"] = [fault.as_dict() for fault in injector.triggered]
        row["incidents"] = log.as_dicts()
        triggered_passes.update(f.pass_name for f in injector.triggered)
        rows.append(row)

    if quarantine_dir:
        os.makedirs(quarantine_dir, exist_ok=True)
        for record in quarantine_records:
            path = os.path.join(quarantine_dir, f"{record['label']}.json")
            with open(path, "w") as fh:
                json.dump(record, fh, indent=2, sort_keys=True)
                fh.write("\n")

    recovered = [r for r in rows if r["outcome"] == "recovered"]
    quarantined = [r for r in rows if r["outcome"] == "quarantined"]
    ok = all(r["identical"] for r in recovered) and all(
        r["quarantine"]["minimized_source"] for r in quarantined
    )
    if len(suite) >= len(pass_names):
        ok = ok and triggered_passes == set(pass_names)
    totals = {
        "programs": len(rows),
        "faults_injected": sum(len(r["injected"]) for r in rows),
        "recovered": len(recovered),
        "recovered_identical": sum(1 for r in recovered if r["identical"]),
        "quarantined": len(quarantined),
        "incidents": sum(len(r["incidents"]) for r in rows),
        "passes_covered": sorted(triggered_passes),
        "passes_registered": len(pass_names),
    }
    return {
        "schema": CHAOS_SCHEMA,
        "seed": seed,
        "mode": "smoke" if smoke else "full",
        "budget_s": budget_s,
        "rows": rows,
        "totals": totals,
        "ok": ok,
    }
