"""Deadlines, bounded retry with backoff, and injectable clocks.

Everything here takes its notion of time as a parameter: a ``clock``
(``() -> float`` seconds) and a ``sleep`` (``(float) -> None``).  Tier-1
tests pass a :class:`FakeClock` whose ``sleep`` merely advances the
clock, so the timeout/retry/backoff logic is exercised without a single
real sleep; production callers use the defaults
(``time.monotonic`` / ``time.sleep``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.robust.errors import PassTimeout

T = TypeVar("T")


class FakeClock:
    """A deterministic clock: time only moves when told to.

    >>> clock = FakeClock()
    >>> clock.sleep(1.5); clock.now()
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds

    def sleep(self, seconds: float) -> None:
        """Record the request and advance -- never blocks."""
        self.sleeps.append(seconds)
        self.advance(seconds)


class Deadline:
    """A wall-clock budget checked cooperatively between phases.

    ``budget_s=None`` never expires, so call sites can thread one object
    unconditionally.
    """

    def __init__(
        self,
        budget_s: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget_s = budget_s
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        return self._clock() - self._started

    def reset(self) -> None:
        """Restart the budget from now -- called after a timeout has been
        *handled* (oracle fallback), so one slow pass doesn't condemn
        every pass after it."""
        self._started = self._clock()

    def remaining(self) -> float:
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(
        self,
        phase: str | None = None,
        pass_name: str | None = None,
        fingerprint: str | None = None,
    ) -> None:
        """Raise :class:`PassTimeout` if the budget is spent."""
        if self.expired():
            raise PassTimeout(
                f"budget of {self.budget_s:.3f}s exhausted after "
                f"{self.elapsed():.3f}s",
                phase=phase,
                pass_name=pass_name,
                fingerprint=fingerprint,
                budget_s=self.budget_s,
                elapsed_s=self.elapsed(),
            )


@dataclass(frozen=True)
class Backoff:
    """Deterministic exponential backoff: ``base * factor**attempt``,
    capped at ``max_s``.  No jitter -- reproducibility is worth more to
    this system than thundering-herd protection.

    >>> [Backoff(base_s=0.1, factor=2.0, max_s=0.5).delay(a) for a in range(4)]
    [0.1, 0.2, 0.4, 0.5]
    """

    base_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0

    def delay(self, attempt: int) -> float:
        return min(self.base_s * (self.factor ** attempt), self.max_s)


def retry_with_backoff(
    fn: Callable[[], T],
    retries: int = 2,
    backoff: Backoff = Backoff(),
    sleep: Callable[[float], None] = time.sleep,
    should_retry: Callable[[BaseException], bool] = lambda exc: True,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn`` with up to ``retries`` retries.

    ``should_retry`` filters which exceptions are worth another attempt
    (an :class:`~repro.robust.errors.InputError` never is -- the input
    will not improve); ``on_retry(attempt, exc)`` lets callers record a
    ``retry`` incident per attempt.  The final failure propagates.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except BaseException as exc:
            if attempt >= retries or not should_retry(exc):
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(backoff.delay(attempt))
            attempt += 1
