"""The degradation policy: fast kernels fail soft, onto their oracles.

PR 2 left every fast path (CSR kernels, the bitset dataflow solver) with
a legacy ``*_reference`` twin that the 204-program equivalence suite
holds byte-identical.  This module turns those twins from test oracles
into *runtime* oracles: a :class:`DegradationPolicy` installed on an
:class:`~repro.pipeline.manager.AnalysisManager` wraps every pass body,
and when a fast kernel raises -- or, with ``cross_check=True``, returns
something its oracle disagrees with -- the policy substitutes the oracle
result, records a ``repro.incident/1``
(:mod:`repro.robust.incidents`), and lets the run continue.  Only a
pass with no registered oracle escalates to
:class:`~repro.robust.errors.AnalysisError`.

The oracle table (:func:`default_oracles`) covers exactly the passes
whose fast path has a reference twin: ``dfs``, ``dom``, ``pdom``,
``cycle-equiv``, ``sese`` (rebuilt from the reference substrates),
``liveness``, ``reaching``, ``available``, ``pavailable``,
``region-summaries``, ``arena-dataflow`` (the fused arena solve
degrades onto the object-graph five-pass menu it replaces), ``defuse``
(the sparse-engine projection degrades onto the dense
reaching-definitions construction), and the sparse clients
``sparse-range``, ``sparse-taint`` and ``ntscd`` (dense / brute-force
reference twins).
:func:`results_equal` knows how to compare each pass's result shape --
the same comparisons the equivalence suite makes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.robust.errors import (
    AnalysisError,
    PassTimeout,
    ReproError,
    error_record,
    graph_fingerprint,
)
from repro.robust.incidents import IncidentLog
from repro.robust.watchdog import Deadline

if TYPE_CHECKING:
    from repro.cfg.graph import CFG
    from repro.pipeline.manager import AnalysisManager, PassSpec
    from repro.util.counters import WorkCounter

#: An oracle body has the same calling convention as a pass body.
OracleFn = Callable[["CFG", Mapping[str, object], "WorkCounter"], object]


# -- oracle registry ---------------------------------------------------------


def _oracle_dfs(graph, deps, counter):
    from repro.graphs.dfs import depth_first_search

    return depth_first_search([graph.start], graph.succs)


def _oracle_dom(graph, deps, counter):
    from repro.graphs.dominance import edge_dominators_reference

    return edge_dominators_reference(graph)


def _oracle_pdom(graph, deps, counter):
    from repro.graphs.dominance import edge_postdominators_reference

    return edge_postdominators_reference(graph)


def _oracle_cycle_equiv(graph, deps, counter):
    from repro.controldep.cycle_equiv import cycle_equivalence_reference

    return cycle_equivalence_reference(graph, counter)


def _oracle_sese(graph, deps, counter):
    from repro.controldep.cycle_equiv import cycle_equivalence_reference
    from repro.controldep.sese import ProgramStructure
    from repro.graphs.dominance import (
        edge_dominators_reference,
        edge_postdominators_reference,
    )

    return ProgramStructure(
        graph,
        dom=edge_dominators_reference(graph),
        pdom=edge_postdominators_reference(graph),
        edge_class=cycle_equivalence_reference(graph),
        counter=counter,
    )


def _oracle_liveness(graph, deps, counter):
    from repro.dataflow.liveness import live_variables_reference

    return live_variables_reference(graph, counter=counter)


def _oracle_reaching(graph, deps, counter):
    from repro.dataflow.reaching import reaching_definitions_reference

    return reaching_definitions_reference(graph, counter)


def _oracle_available(graph, deps, counter):
    from repro.dataflow.available import available_expressions_reference

    return available_expressions_reference(graph, counter)


def _oracle_pavailable(graph, deps, counter):
    from repro.dataflow.available import (
        partially_available_expressions_reference,
    )

    return partially_available_expressions_reference(graph, counter)


def _oracle_region_summaries(graph, deps, counter):
    """Flat-bitset twin of the hierarchical region-summary solve: the
    same four problems over the same CSR, solved by the plain fixpoint
    (no region tree involved)."""
    from repro.perf.bitset import solve_bitset
    from repro.perf.csr import build_csr
    from repro.regions.hierarchical import core_problems

    csr = build_csr(graph)
    problems = core_problems(graph, csr)
    out = {}
    for name, problem in sorted(problems.items()):
        masks = solve_bitset(csr, problem)
        out[name] = {csr.edge_ids[e]: masks[e] for e in range(csr.m)}
    return out


def _oracle_arena_dataflow(graph, deps, counter):
    """Object-graph twin of the fused arena solve: the four bitset
    analyses plus vector constant propagation, result shapes matching
    :func:`repro.arena.kernels.analyze_arena`."""
    from repro.dataflow.bitsets import (
        anticipatable_bitsets,
        available_bitsets,
        liveness_bitsets,
        reaching_bitsets,
    )
    from repro.opt.cfg_constprop import cfg_constant_propagation

    return {
        "available": available_bitsets(graph),
        "anticipatable": anticipatable_bitsets(graph),
        "liveness": liveness_bitsets(graph),
        "reaching": reaching_bitsets(graph),
        "constprop": cfg_constant_propagation(graph, counter),
    }


def _oracle_defuse(graph, deps, counter):
    from repro.defuse.chains import build_def_use_chains_reference

    return build_def_use_chains_reference(graph, counter)


def _oracle_sparse_range(graph, deps, counter):
    from repro.sparse.range_analysis import range_analysis_reference

    return range_analysis_reference(graph, counter)


def _oracle_sparse_taint(graph, deps, counter):
    from repro.sparse.taint import taint_analysis_reference

    return taint_analysis_reference(graph, counter=counter)


def _oracle_ntscd(graph, deps, counter):
    from repro.controldep.ntscd import ntscd_reference

    return ntscd_reference(graph, counter)


_ORACLES: dict[str, OracleFn] = {
    "dfs": _oracle_dfs,
    "dom": _oracle_dom,
    "pdom": _oracle_pdom,
    "cycle-equiv": _oracle_cycle_equiv,
    "sese": _oracle_sese,
    "liveness": _oracle_liveness,
    "reaching": _oracle_reaching,
    "available": _oracle_available,
    "pavailable": _oracle_pavailable,
    "region-summaries": _oracle_region_summaries,
    "arena-dataflow": _oracle_arena_dataflow,
    "defuse": _oracle_defuse,
    "sparse-range": _oracle_sparse_range,
    "sparse-taint": _oracle_sparse_taint,
    "ntscd": _oracle_ntscd,
}


def default_oracles() -> dict[str, OracleFn]:
    """Pass name -> legacy reference implementation (a fresh copy)."""
    return dict(_ORACLES)


# -- result comparators ------------------------------------------------------


def _tree_eq(a, b) -> bool:
    return a.root == b.root and a.idom == b.idom


def _sese_eq(a, b) -> bool:
    if sorted((r.entry, r.exit) for r in a.regions) != sorted(
        (r.entry, r.exit) for r in b.regions
    ):
        return False
    for nid in a.graph.nodes:
        ra, rb = a.region_of_node.get(nid), b.region_of_node.get(nid)
        if (ra and (ra.entry, ra.exit)) != (rb and (rb.entry, rb.exit)):
            return False
    return True


def _csr_eq(a, b) -> bool:
    return (
        a.node_ids == b.node_ids
        and a.edge_ids == b.edge_ids
        and a.succ_off == b.succ_off
        and a.succ_node == b.succ_node
        and a.succ_edge == b.succ_edge
        and a.pred_off == b.pred_off
        and a.pred_node == b.pred_node
        and a.pred_edge == b.pred_edge
        and (a.start, a.end) == (b.start, b.end)
    )


def _chains_eq(a, b) -> bool:
    # The sparse fast path emits chains canonically sorted; the dense
    # reference's order is reaching-frozenset iteration order.  Same
    # answer means the same chain *set*.
    key = lambda c: (c.use_node, c.var, c.def_node)  # noqa: E731
    return sorted(a.chains, key=key) == sorted(b.chains, key=key)


def _facts_eq(a, b) -> bool:
    """Results exposing a canonical ``facts()`` comparison surface
    (sparse range/taint, NTSCD) are the same answer iff it matches."""
    return a.facts() == b.facts()


def _arena_eq(a, b) -> bool:
    """Two ``(pool, arena)`` lowerings are the same answer when their
    shipped core tables match -- every derived pool table is a function
    of those, and :class:`~repro.arena.arena.ProgramArena` compares by
    value."""
    pool_a, arena_a = a
    pool_b, arena_b = b
    return (
        pool_a.names == pool_b.names
        and pool_a.literals == pool_b.literals
        and pool_a.kind == pool_b.kind
        and pool_a.arg0 == pool_b.arg0
        and pool_a.arg1 == pool_b.arg1
        and pool_a.arg2 == pool_b.arg2
        and arena_a == arena_b
    )


def _regions_eq(a, b) -> bool:
    """Two region-system assemblies are the same answer when every
    system has the same boundary, ownership, hierarchy and units."""
    if len(a.systems) != len(b.systems):
        return False
    return all(
        sa.key == sb.key
        and sa.parent == sb.parent
        and sa.nodes == sb.nodes
        and sa.children == sb.children
        and sa.fwd_units == sb.fwd_units
        and sa.bwd_units == sb.bwd_units
        for sa, sb in zip(a.systems, b.systems)
    )


#: Pass name -> comparator for result shapes without value equality.
_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "dom": _tree_eq,
    "pdom": _tree_eq,
    "sese": _sese_eq,
    "csr": _csr_eq,
    "defuse": _chains_eq,
    "regions": _regions_eq,
    "arena": _arena_eq,
    "sparse-range": _facts_eq,
    "sparse-taint": _facts_eq,
    "ntscd": _facts_eq,
}


def results_equal(name: str, a: object, b: object) -> bool:
    """Are two results of pass ``name`` the same answer?

    Uses the pass-specific comparator where the result type lacks value
    equality (dominator trees, program structure, CSR snapshots, def-use
    chains); everything else -- dicts of frozensets, dataclass results --
    compares with ``==``.
    """
    comparator = _COMPARATORS.get(name)
    if comparator is not None:
        return comparator(a, b)
    return a == b


# -- the policy --------------------------------------------------------------


class DegradationPolicy:
    """Runs pass bodies with oracle fallback, cross-checks and deadlines.

    Install on a manager with
    ``AnalysisManager(graph, policy=DegradationPolicy(...))``.  Knobs:

    ``oracles``
        pass name -> reference implementation (default:
        :func:`default_oracles`).
    ``cross_check``
        also run the oracle on *successful* fast results and compare; on
        mismatch the oracle's answer wins and a ``cross-check-mismatch``
        incident is recorded.  This is how silently-corrupted results
        are caught, at the price of running both sides.
    ``deadline``
        a :class:`~repro.robust.watchdog.Deadline` checked after every
        pass; an expired budget degrades the pass that overran it (or
        escalates, when it has no oracle).
    ``injector``
        a fault injector (see :mod:`repro.robust.chaos`) whose
        ``apply(fault, spec, graph, deps, counter)`` replaces the pass
        body for planned passes -- the hook the chaos harness uses.
    """

    def __init__(
        self,
        oracles: dict[str, OracleFn] | None = None,
        incidents: IncidentLog | None = None,
        cross_check: bool = False,
        deadline: Deadline | None = None,
        injector: object | None = None,
    ) -> None:
        self.oracles = oracles if oracles is not None else default_oracles()
        self.incidents = incidents if incidents is not None else IncidentLog()
        self.cross_check = cross_check
        self.deadline = deadline
        self.injector = injector

    def run_pass(
        self,
        manager: "AnalysisManager",
        spec: "PassSpec",
        deps: Mapping[str, object],
    ) -> object:
        graph = manager.graph
        counter = manager.metrics.counter
        phase = f"pass:{spec.name}"
        fault = (
            self.injector.fault_for(spec.name)
            if self.injector is not None
            else None
        )
        try:
            if fault is not None:
                result = self.injector.apply(fault, spec, graph, deps, counter)
            else:
                result = spec.build(graph, deps, counter)
            if self.deadline is not None:
                self.deadline.check(
                    phase=phase,
                    pass_name=spec.name,
                    fingerprint=graph_fingerprint(graph),
                )
        except ReproError as exc:
            if isinstance(exc, PassTimeout):
                return self._degrade(manager, spec, deps, exc)
            # Input errors and already-classified failures are precise;
            # an oracle cannot repair a malformed graph.
            raise
        except Exception as exc:
            return self._degrade(manager, spec, deps, exc)
        if self.cross_check and spec.name in self.oracles:
            expected = self.oracles[spec.name](graph, deps, counter)
            if not results_equal(spec.name, result, expected):
                self.incidents.record(
                    "cross-check-mismatch",
                    pass_name=spec.name,
                    phase=phase,
                    fingerprint=graph_fingerprint(graph),
                    recovered=True,
                )
                return expected
        return result

    def _degrade(
        self,
        manager: "AnalysisManager",
        spec: "PassSpec",
        deps: Mapping[str, object],
        exc: BaseException,
    ) -> object:
        graph = manager.graph
        phase = f"pass:{spec.name}"
        fingerprint = graph_fingerprint(graph)
        oracle = self.oracles.get(spec.name)
        if oracle is None:
            self.incidents.record(
                "unrecovered",
                pass_name=spec.name,
                phase=phase,
                fingerprint=fingerprint,
                recovered=False,
                error=error_record(exc),
            )
            if isinstance(exc, PassTimeout):
                raise exc
            raise AnalysisError(
                f"pass {spec.name!r} failed with no oracle to fall back "
                f"to: {exc}",
                phase=phase,
                pass_name=spec.name,
                fingerprint=fingerprint,
            ) from exc
        try:
            result = oracle(graph, deps, manager.metrics.counter)
        except Exception as oracle_exc:
            self.incidents.record(
                "oracle-failed",
                pass_name=spec.name,
                phase=phase,
                fingerprint=fingerprint,
                recovered=False,
                error=error_record(oracle_exc),
            )
            raise AnalysisError(
                f"pass {spec.name!r} failed and its oracle failed too: "
                f"{oracle_exc}",
                phase=phase,
                pass_name=spec.name,
                fingerprint=fingerprint,
            ) from oracle_exc
        if isinstance(exc, PassTimeout):
            kind = "timeout-fallback"
            if self.deadline is not None:
                self.deadline.reset()
        else:
            kind = "oracle-fallback"
        self.incidents.record(
            kind,
            pass_name=spec.name,
            phase=phase,
            fingerprint=fingerprint,
            recovered=True,
            error=error_record(exc),
        )
        return result
