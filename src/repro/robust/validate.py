"""CFG well-formedness validation with precise, collected diagnostics.

:meth:`repro.cfg.graph.CFG.validate` raises on the *first* invariant it
finds broken; this module's :func:`cfg_violations` instead sweeps the
whole graph and returns every violation as one human-readable line, and
:func:`check_cfg` packages them into a single :class:`InputError`
carrying the graph fingerprint.  The sweep also covers internal
consistency the structural check takes for granted -- dangling edge
endpoints, adjacency lists that disagree with the edge table, duplicate
START/END nodes -- so a hand-built (or corrupted) graph produces a
diagnostic rather than a ``KeyError`` three analyses later.
"""

from __future__ import annotations

from repro.cfg.graph import CFG, NodeKind
from repro.robust.errors import InputError, graph_fingerprint


def cfg_violations(graph: CFG, normalized: bool = True) -> list[str]:
    """Every well-formedness violation of ``graph``, as diagnostic lines.

    An empty list means the graph is well-formed.  With
    ``normalized=True`` (the default: every pipeline entry point takes
    normalized graphs) the Section 2.1 node-arity and branch-label
    invariants are checked too.
    """
    out: list[str] = []

    # -- table consistency: edges and adjacency must agree ------------------
    for eid, edge in graph.edges.items():
        if edge.src not in graph.nodes:
            out.append(f"edge {eid} has dangling source node {edge.src}")
        elif eid not in graph._out.get(edge.src, ()):
            out.append(f"edge {eid} missing from out-list of node {edge.src}")
        if edge.dst not in graph.nodes:
            out.append(f"edge {eid} has dangling target node {edge.dst}")
        elif eid not in graph._in.get(edge.dst, ()):
            out.append(f"edge {eid} missing from in-list of node {edge.dst}")
    for nid in graph.nodes:
        for eid in graph._out.get(nid, ()):
            if eid not in graph.edges:
                out.append(f"node {nid} out-list references dead edge {eid}")
        for eid in graph._in.get(nid, ()):
            if eid not in graph.edges:
                out.append(f"node {nid} in-list references dead edge {eid}")
    if out:
        # The graph's tables are inconsistent; reachability and arity
        # checks below would chase the same dangling references.
        return out

    # -- unique, correctly-typed start and end ------------------------------
    starts = [n.id for n in graph.nodes.values() if n.kind is NodeKind.START]
    ends = [n.id for n in graph.nodes.values() if n.kind is NodeKind.END]
    if len(starts) != 1:
        out.append(f"expected exactly one START node, found {starts}")
    if len(ends) != 1:
        out.append(f"expected exactly one END node, found {ends}")
    if graph.start not in graph.nodes:
        out.append(f"start designates missing node {graph.start}")
    elif graph.nodes[graph.start].kind is not NodeKind.START:
        out.append(
            f"start node {graph.start} has kind "
            f"{graph.nodes[graph.start].kind.value!r}, expected 'start'"
        )
    if graph.end not in graph.nodes:
        out.append(f"end designates missing node {graph.end}")
    elif graph.nodes[graph.end].kind is not NodeKind.END:
        out.append(
            f"end node {graph.end} has kind "
            f"{graph.nodes[graph.end].kind.value!r}, expected 'end'"
        )
    if out:
        return out
    if graph._in[graph.start]:
        out.append(f"start node {graph.start} must have no in-edges")
    if graph._out[graph.end]:
        out.append(f"end node {graph.end} must have no out-edges")

    # -- reachability -------------------------------------------------------
    unreachable = sorted(set(graph.nodes) - graph.reachable_from_start())
    if unreachable:
        out.append(f"nodes unreachable from start: {unreachable}")
    stuck = sorted(set(graph.nodes) - graph.reaching_end())
    if stuck:
        out.append(f"nodes that cannot reach end: {stuck}")

    if not normalized:
        return out

    # -- per-kind arity and branch-label consistency ------------------------
    for node in graph.nodes.values():
        n_in = len(graph._in[node.id])
        n_out = len(graph._out[node.id])
        kind = node.kind
        if kind is NodeKind.START:
            if n_out != 1:
                out.append(
                    f"start node {node.id} has {n_out} out-edges, expected 1"
                )
        elif kind is NodeKind.END:
            if n_in > 1:
                out.append(
                    f"end node {node.id} has {n_in} in-edges, expected <=1"
                )
        elif kind is NodeKind.MERGE:
            if n_in < 2 or n_out != 1:
                out.append(
                    f"merge node {node.id} has {n_in} in / {n_out} out, "
                    f"expected >=2 in and exactly 1 out"
                )
        elif kind is NodeKind.SWITCH:
            if n_in != 1 or n_out < 2:
                out.append(
                    f"switch node {node.id} has {n_in} in / {n_out} out, "
                    f"expected exactly 1 in and >=2 out"
                )
            labels = [e.label for e in graph.out_edges(node.id)]
            if None in labels:
                out.append(f"switch node {node.id} has an unlabeled out-edge")
            elif len(set(labels)) != len(labels):
                out.append(
                    f"switch node {node.id} has duplicate branch labels "
                    f"{sorted(labels)}"
                )
            if node.expr is None:
                out.append(f"switch node {node.id} has no branch predicate")
        else:  # ASSIGN, PRINT, NOP
            if n_in != 1 or n_out != 1:
                out.append(
                    f"{kind.value} node {node.id} has {n_in} in / {n_out} "
                    f"out, expected exactly 1 of each"
                )
            if kind is NodeKind.ASSIGN and (
                node.target is None or node.expr is None
            ):
                out.append(
                    f"assign node {node.id} lacks a target or expression"
                )
    return out


def check_cfg(
    graph: CFG, normalized: bool = True, phase: str = "validate-cfg"
) -> CFG:
    """Raise one precise :class:`InputError` if ``graph`` is malformed.

    The message leads with the first violation and counts the rest; the
    full list rides on ``InputError.violations`` (and its
    :meth:`~repro.robust.errors.ReproError.as_dict`).  Returns the graph
    so call sites can chain.
    """
    violations = cfg_violations(graph, normalized=normalized)
    if violations:
        more = (
            f" (+{len(violations) - 1} more violations)"
            if len(violations) > 1
            else ""
        )
        raise InputError(
            f"malformed CFG: {violations[0]}{more}",
            phase=phase,
            fingerprint=graph_fingerprint(graph),
            violations=violations,
        )
    return graph
