"""The error taxonomy of the fault-tolerant runtime.

Research prototypes fail with a stack trace from whatever ``assert`` or
``KeyError`` happened to fire first; a production analysis service needs
every failure to say *what* failed (the pass), *where* (the phase of the
run), and *on which input* (a stable graph fingerprint) -- and it needs
the distinction between "your input is malformed" (:class:`InputError`),
"an analysis kernel broke" (:class:`AnalysisError`) and "an analysis ran
out of wall-clock budget" (:class:`PassTimeout`), because the three have
different remediations: reject, degrade to the oracle, or retry.

:class:`InputError` also subclasses :class:`~repro.cfg.graph.CFGError`
so every existing ``except CFGError`` handler keeps working; raising it
is a strict refinement, not a behavior change.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.cfg.graph import CFGError

if TYPE_CHECKING:
    from repro.cfg.graph import CFG

ERROR_SCHEMA = "repro.error/1"


class ReproError(Exception):
    """Base class for every structured runtime failure.

    ``phase`` names the stage of the run (``"build-cfg"``,
    ``"pass:dom"``, ``"batch-worker"``, ...); ``pass_name`` the analysis
    pass involved, if any; ``fingerprint`` the
    :func:`graph_fingerprint` of the input graph, so two reports about
    the same graph are recognizably about the same graph.
    """

    kind = "error"

    def __init__(
        self,
        message: str,
        phase: str | None = None,
        pass_name: str | None = None,
        fingerprint: str | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.phase = phase
        self.pass_name = pass_name
        self.fingerprint = fingerprint

    def __str__(self) -> str:
        context = ", ".join(
            f"{key}={value}"
            for key, value in (
                ("pass", self.pass_name),
                ("phase", self.phase),
                ("graph", self.fingerprint),
            )
            if value
        )
        return f"{self.message} [{context}]" if context else self.message

    def as_dict(self) -> dict:
        """The structured record embedded in incident / batch payloads."""
        return {
            "schema": ERROR_SCHEMA,
            "kind": self.kind,
            "type": type(self).__name__,
            "message": self.message,
            "phase": self.phase,
            "pass": self.pass_name,
            "fingerprint": self.fingerprint,
        }


class InputError(ReproError, CFGError):
    """The input (program text or constructed CFG) is malformed.

    Raised by the validator with *one* precise diagnostic -- the first
    violation plus a count of the rest -- instead of whatever deep
    ``KeyError`` the malformation would eventually cause.
    """

    kind = "input"

    def __init__(
        self,
        message: str,
        phase: str | None = None,
        fingerprint: str | None = None,
        violations: list[str] | None = None,
    ) -> None:
        super().__init__(message, phase=phase, fingerprint=fingerprint)
        self.violations = list(violations or ())

    def as_dict(self) -> dict:
        record = super().as_dict()
        record["violations"] = list(self.violations)
        return record


class AnalysisError(ReproError):
    """An analysis kernel failed on well-formed input.

    This is the "bug in the fast path" error: the degradation policy
    raises it only when no ``*_reference`` oracle could absorb the
    failure.  ``__cause__`` carries the original exception.
    """

    kind = "analysis"


class PassTimeout(AnalysisError):
    """A pass exceeded its wall-clock budget."""

    kind = "timeout"

    def __init__(
        self,
        message: str,
        phase: str | None = None,
        pass_name: str | None = None,
        fingerprint: str | None = None,
        budget_s: float | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        super().__init__(
            message, phase=phase, pass_name=pass_name, fingerprint=fingerprint
        )
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s

    def as_dict(self) -> dict:
        record = super().as_dict()
        record["budget_s"] = self.budget_s
        record["elapsed_s"] = self.elapsed_s
        return record


class StaleSnapshotError(AnalysisError, ValueError):
    """A kernel was handed a CSR snapshot of an outdated graph shape.

    Subclasses :class:`ValueError` for callers that predate the
    taxonomy.
    """

    kind = "stale-snapshot"


def error_record(exc: BaseException) -> dict:
    """A structured record for *any* exception (taxonomy or foreign)."""
    if isinstance(exc, ReproError):
        return exc.as_dict()
    return {
        "schema": ERROR_SCHEMA,
        "kind": "unexpected",
        "type": type(exc).__name__,
        "message": str(exc),
        "phase": None,
        "pass": None,
        "fingerprint": None,
    }


def graph_fingerprint(graph: "CFG") -> str:
    """A short stable digest of a CFG's full content.

    Covers node kinds, targets and expressions, edge endpoints and
    labels, and the start/end designation -- everything an analysis can
    observe -- in id-sorted order, so the fingerprint is independent of
    construction order, dict iteration and hash seeds.  Two failure
    reports with the same fingerprint are about the same graph.
    """
    hasher = hashlib.sha256()
    for nid in sorted(graph.nodes):
        node = graph.nodes[nid]
        hasher.update(
            f"n{nid}:{node.kind.value}:{node.target}:{node.expr!r};".encode()
        )
    for eid in sorted(graph.edges):
        edge = graph.edges[eid]
        hasher.update(
            f"e{eid}:{edge.src}->{edge.dst}:{edge.label};".encode()
        )
    hasher.update(f"s{graph.start}:t{graph.end}".encode())
    return hasher.hexdigest()[:12]
