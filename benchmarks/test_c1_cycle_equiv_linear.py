"""Experiment C1 (Section 3.1): cycle equivalence in O(E).

Paper claim: "we sketch our O(E) algorithm for finding single-entry
single-exit regions" via cycle equivalence with one undirected DFS and
bracket lists.

Deterministic shape: the number of undirected DFS steps and bracket
operations is bounded by a constant multiple of E across a 4x size range
(measured through the class structure: classes and regions grow
linearly).  Wall time is benchmarked across the range; the largest
instances have thousands of edges and still run in milliseconds.
"""

from repro.cfg.builder import build_cfg
from repro.controldep.cycle_equiv import cycle_equivalence
from repro.controldep.sese import ProgramStructure
from repro.workloads.generators import random_program
from repro.workloads.ladders import diamond_chain, loop_nest

SIZES = (50, 100, 200, 400)
GRAPHS = {n: build_cfg(diamond_chain(n)) for n in SIZES}
NEST = build_cfg(loop_nest(8, width=4))
RANDOM = build_cfg(random_program(11, size=300, num_vars=5))


def test_shape_classes_linear(benchmark):
    rows = {}
    for n in SIZES:
        g = GRAPHS[n]
        classes = cycle_equivalence(g)
        rows[n] = (g.num_edges, len(set(classes.values())))
    print("\nC1 (diamonds: E, classes):")
    for n, (edges, classes) in rows.items():
        print(f"  n={n:4d}: E={edges:5d} classes={classes:5d}")
    for a, b in zip(SIZES, SIZES[1:]):
        edge_ratio = rows[b][0] / rows[a][0]
        class_ratio = rows[b][1] / rows[a][1]
        assert 1.5 < class_ratio < edge_ratio * 1.5
    benchmark(cycle_equivalence, GRAPHS[SIZES[-1]])


def test_time_cycle_equivalence_largest(benchmark):
    benchmark(cycle_equivalence, GRAPHS[SIZES[-1]])


def test_time_cycle_equivalence_loop_nest(benchmark):
    benchmark(cycle_equivalence, NEST)


def test_time_cycle_equivalence_random(benchmark):
    benchmark(cycle_equivalence, RANDOM)


def test_time_full_program_structure(benchmark):
    """Classes -> ordered chains -> regions -> PST (adds the dominator
    computations on top of the O(E) core)."""
    benchmark(ProgramStructure, GRAPHS[SIZES[-1]])
