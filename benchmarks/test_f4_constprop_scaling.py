"""Experiment F4 (Figure 4 / Section 4): O(EV^2) vs O(EV).

Paper claim: "Whereas the control flow algorithm performed O(V) work
each time a node is processed, the DFG algorithm performs work only for
the relevant dependences ... the asymptotic complexity of the DFG
algorithm is O(EV)" against O(EV^2) for the vector algorithm.

On the wide-variable family (V grows, uses per variable fixed) the CFG
algorithm's lattice work grows ~quadratically in V while the DFG
algorithm's propagation work grows ~linearly, and both find identical
constants.  Analysis-time benchmarks at the largest V time the solved
fixpoints alone (structures prebuilt where the algorithm allows).
"""

from repro.cfg.builder import build_cfg
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.util.counters import WorkCounter
from repro.workloads.ladders import wide_variable_program

V_SIZES = (16, 32, 64)
GRAPHS = {n: build_cfg(wide_variable_program(n)) for n in V_SIZES}
DFGS = {n: build_dfg(GRAPHS[n]) for n in V_SIZES}


def cfg_work(n):
    counter = WorkCounter()
    cfg_constant_propagation(GRAPHS[n], counter)
    return counter["vector_entries"]


def dfg_work(n):
    counter = WorkCounter()
    dfg_constant_propagation(GRAPHS[n], DFGS[n], counter)
    return counter["port_recomputations"] + counter["dfg_evaluations"]


def test_shape_quadratic_vs_linear(benchmark):
    cfg_rows = {n: cfg_work(n) for n in V_SIZES}
    dfg_rows = {n: dfg_work(n) for n in V_SIZES}
    print("\nF4 work units (V: CFG vectors / DFG ports):")
    for n in V_SIZES:
        print(f"  V={n:3d}: {cfg_rows[n]:8d} / {dfg_rows[n]:6d}")
    for a, b in zip(V_SIZES, V_SIZES[1:]):
        cfg_ratio = cfg_rows[b] / cfg_rows[a]
        dfg_ratio = dfg_rows[b] / dfg_rows[a]
        assert cfg_ratio > 3.0, f"CFG work should ~quadruple: {cfg_ratio}"
        assert dfg_ratio < 3.0, f"DFG work should ~double: {dfg_ratio}"
        assert cfg_ratio > dfg_ratio * 1.5
    benchmark(dfg_work, V_SIZES[-1])


def test_shape_identical_precision(benchmark):
    n = V_SIZES[-1]
    cfg_result = cfg_constant_propagation(GRAPHS[n])
    dfg_result = dfg_constant_propagation(GRAPHS[n], DFGS[n])
    for key, value in dfg_result.use_values.items():
        if key[1] != CTRL_VAR:
            assert cfg_result.use_values[key] == value
    benchmark(cfg_constant_propagation, GRAPHS[n])


def test_time_cfg_constprop_largest(benchmark):
    benchmark(cfg_constant_propagation, GRAPHS[V_SIZES[-1]])


def test_time_dfg_constprop_largest(benchmark):
    benchmark(
        dfg_constant_propagation, GRAPHS[V_SIZES[-1]], DFGS[V_SIZES[-1]]
    )


def test_time_dfg_constprop_including_construction(benchmark):
    benchmark(dfg_constant_propagation, GRAPHS[V_SIZES[-1]])
