"""Experiment F6 (Figure 6): single-variable anticipatability.

Reproduces the figure's dependence-edge values exactly (d4 false at the
unrelated use of x, d5/d6 true at the computations of x+1, multiedge OR
making the tails true), checks the projection matches the CFG solution,
and times the dependence-based computation against the dense CFG
formulation on a scaled-up variant.
"""

from repro.cfg.builder import build_cfg
from repro.cfg.graph import NodeKind
from repro.core.anticipate import dfg_anticipatability
from repro.core.dfg import Head, HeadKind, Port, PortKind
from repro.dataflow.anticipatable import anticipatable_expressions
from repro.lang.parser import parse_expr, parse_program
from repro.workloads import suites

EXPR = parse_expr("x + 1")
FIG6 = build_cfg(suites.figure6())


def scaled_variant(branches: int = 12):
    """Figure 6's shape, repeated: one definition of x, many branches
    with mixed uses, every branch computing x+1 eventually."""
    arms = []
    for i in range(branches):
        arms.append(
            f"if (c{i} > 0) {{ y{i} := x * 3; z{i} := x + 1; }} "
            f"else {{ w{i} := x + 1; }}"
        )
        arms.append(f"print z{i} + w{i} + y{i};")
        arms.append(f"x := a{i};")
    return build_cfg(parse_program("x := a;\n" + "\n".join(arms)))


SCALED = scaled_variant()


def test_shape_figure6_exact(benchmark):
    result = dfg_anticipatability(FIG6, EXPR)
    rel = result.per_var["x"]
    other_use = next(n for n in FIG6.assign_nodes() if n.target == "y")
    assert rel.ant_heads[Head(HeadKind.USE, other_use.id, "x")] is False
    for target in ("z", "w"):
        node = next(n for n in FIG6.assign_nodes() if n.target == target)
        assert rel.ant_heads[Head(HeadKind.USE, node.id, "x")] is True
    x_def = next(n for n in FIG6.assign_nodes() if n.target == "x")
    assert rel.ant_tails[Port(PortKind.DEF, "x", x_def.id)] is True
    switch = next(
        n.id for n in FIG6.nodes.values() if n.kind is NodeKind.SWITCH
    )
    assert rel.ant_heads[Head(HeadKind.SWITCH_IN, switch, "x")] is True
    # Projection == CFG solution ("ANT true at every point between the
    # definition of x and the two computations of x+1").
    cfg_set = {
        eid
        for eid, s in anticipatable_expressions(FIG6).items()
        if EXPR in s
    }
    assert result.ant_edges == cfg_set
    print(f"\nF6 ANT edges: {sorted(result.ant_edges)} (== CFG answer)")
    benchmark(dfg_anticipatability, FIG6, EXPR)


def test_shape_scaled_agreement(benchmark):
    result = dfg_anticipatability(SCALED, EXPR)
    cfg_set = {
        eid
        for eid, s in anticipatable_expressions(SCALED).items()
        if EXPR in s
    }
    assert result.ant_edges <= cfg_set
    benchmark(dfg_anticipatability, SCALED, EXPR)


def test_time_cfg_ant_dense(benchmark):
    benchmark(anticipatable_expressions, SCALED)
