"""Experiment F5 (Figure 5 / Section 5.2): partial redundancy
elimination, DFG vs dense CFG.

Paper claims: the DFG algorithm "propagates information only through the
portion of the control flow graph where the variables in the expression
are live", needs no critical-edge splitting, and matches the
optimization quality of the classical approach.

Shape assertions: both eliminate the same dynamic redundancy on a
loop-invariant workload (interpreter-counted), the DFG side does less
anticipatability propagation work, and the CFG side splits critical
edges it later throws away.
"""

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.core.epr import eliminate_partial_redundancies
from repro.lang.parser import parse_expr, parse_program
from repro.opt.cfg_epr import cfg_eliminate_partial_redundancies
from repro.util.counters import WorkCounter

AB = parse_expr("a + b")


def workload(regions: int = 10):
    """Loop-invariant code inside repeat-until loops, with unrelated
    variable traffic around them (the live-range sparsity the DFG
    exploits)."""
    parts = ["a := p; b := q; total := 0;"]
    for i in range(regions):
        parts.append(f"u{i} := {i}; w{i} := u{i} * 2;")
        parts.append(
            f"n{i} := 3; repeat {{ total := total + (a + b); "
            f"n{i} := n{i} - 1; }} until (n{i} <= 0);"
        )
    parts.append("print total;")
    return build_cfg(parse_program("\n".join(parts)))


GRAPH = workload()


def run_dfg(graph):
    counter = WorkCounter()
    result = eliminate_partial_redundancies(graph, AB, counter=counter)
    return result, counter


def run_cfg_epr(graph):
    counter = WorkCounter()
    result = cfg_eliminate_partial_redundancies(graph, AB, counter=counter)
    return result, counter


def test_shape_equal_quality_less_work(benchmark):
    dfg_result, dfg_counter = run_dfg(GRAPH)
    cfg_result, cfg_counter = run_cfg_epr(GRAPH)
    env = {"p": 1, "q": 2}
    base = run_cfg(GRAPH, env).eval_counts[AB]
    via_dfg = run_cfg(dfg_result.graph, env).eval_counts[AB]
    via_cfg = run_cfg(cfg_result.graph, env).eval_counts[AB]
    print(f"\nF5 a+b evaluations: baseline={base} dfg={via_dfg} cfg={via_cfg}")
    assert via_dfg < base and via_cfg < base
    assert via_dfg == via_cfg, "both must capture the same redundancy"

    dfg_ant_work = dfg_counter["ant_head_evals"]
    cfg_ant_work = cfg_counter["node_visits"]
    split = cfg_counter["critical_edges_split"]
    useless = cfg_counter["useless_split_blocks_removed"]
    print(f"F5 ANT propagation: dfg heads={dfg_ant_work} "
          f"cfg node-visits={cfg_ant_work}")
    print(f"F5 critical edges split={split}, later removed unused={useless}")
    assert dfg_ant_work < cfg_ant_work
    assert split > 0 and useless > 0  # the node-based tradition's overhead
    benchmark(run_dfg, GRAPH)


def test_time_dfg_epr(benchmark):
    benchmark(eliminate_partial_redundancies, GRAPH, AB)


def test_time_cfg_epr(benchmark):
    benchmark(cfg_eliminate_partial_redundancies, GRAPH, AB)
