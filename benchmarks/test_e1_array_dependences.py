"""Extension experiment E1: arrays via the [BJP91] update encoding.

Section 6 defers arrays / aliasing / anti- and output dependences to the
authors' companion work; we implement the encoding (a store is
``a := update(a, i, v)``) and measure that

* DFG construction over array version chains stays linear in the number
  of stores (the chain is just more scalar dependences), and
* redundant-load elimination is ordinary PRE of the load expression,
  verified dynamically with the counting interpreter.
"""

from repro.cfg.builder import build_cfg
from repro.cfg.interp import run_cfg
from repro.core.build import build_dfg
from repro.core.epr import eliminate_partial_redundancies
from repro.lang.parser import parse_expr, parse_program
from repro.util.counters import WorkCounter

SIZES = (10, 20, 40)


def store_chain(n):
    lines = [f"a[{i % 7}] := s + {i};" for i in range(n)]
    lines.append("print a[0] + a[3];")
    return build_cfg(parse_program("\n".join(lines)))


GRAPHS = {n: store_chain(n) for n in SIZES}


def construction_work(graph) -> int:
    counter = WorkCounter()
    build_dfg(graph, counter=counter)
    return counter["source_resolutions"]


def test_shape_version_chain_linear(benchmark):
    work = {n: construction_work(GRAPHS[n]) for n in SIZES}
    print("\nE1 construction work over store chains:")
    for n in SIZES:
        print(f"  stores={n:3d} work={work[n]:5d}")
    for a, b in zip(SIZES, SIZES[1:]):
        assert work[b] / work[a] < 3.0
    benchmark(construction_work, GRAPHS[SIZES[-1]])


LOADS = build_cfg(parse_program(
    "x := a[i];\n"
    + "\n".join(f"y{k} := a[i] + {k};" for k in range(8))
    + "\nprint x + y0 + y7;"
))


def test_shape_redundant_loads_eliminated(benchmark):
    load = parse_expr("a[i]")
    result = eliminate_partial_redundancies(LOADS, load)
    env = {"a": {0: 6}, "i": 0}
    before = run_cfg(LOADS, env).eval_counts[load]
    after = run_cfg(result.graph, env).eval_counts[load]
    print(f"\nE1 a[i] loads per run: {before} -> {after}")
    assert before == 9 and after == 1
    assert run_cfg(LOADS, env).outputs == run_cfg(result.graph, env).outputs
    benchmark(eliminate_partial_redundancies, LOADS, load)


def test_time_build_dfg_store_chain(benchmark):
    benchmark(build_dfg, GRAPHS[SIZES[-1]])
