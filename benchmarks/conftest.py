"""Shared workload builders for the experiment benchmarks.

Graphs are built once per session and copied where a benchmark mutates
them.  Every benchmark file corresponds to one experiment id in
DESIGN.md / EXPERIMENTS.md and carries deterministic *shape assertions*
(who wins, by roughly what factor) alongside the timing measurements.

Analysis results come through :class:`repro.pipeline.AnalysisManager`
fixtures: each session graph gets one manager, so benchmarks that only
*read* an analysis (the DFG, SESE structure, dominators) share a single
computation instead of each rebuilding it, and the per-pass work/wall
numbers are available via ``manager.report()`` for shape assertions.
"""

from __future__ import annotations

import json
import os
import platform

import pytest

from repro.cfg.builder import build_cfg
from repro.pipeline import AnalysisManager
from repro.workloads.generators import inline_expansion_program, random_program
from repro.workloads.ladders import (
    defuse_worst_case,
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)


@pytest.fixture(scope="session")
def medium_random_graph():
    return build_cfg(random_program(42, size=60, num_vars=5))


@pytest.fixture(scope="session")
def large_random_graph():
    return build_cfg(random_program(7, size=200, num_vars=6))


@pytest.fixture(scope="session")
def inline_graph():
    return build_cfg(inline_expansion_program(3, calls=12, num_vars=4))


@pytest.fixture(scope="session")
def medium_random_manager(medium_random_graph):
    return AnalysisManager(medium_random_graph)


@pytest.fixture(scope="session")
def large_random_manager(large_random_graph):
    return AnalysisManager(large_random_graph)


@pytest.fixture(scope="session")
def inline_manager(inline_graph):
    return AnalysisManager(inline_graph)


def pytest_sessionfinish(session, exitstatus):
    """Optionally export pytest-benchmark timings as ``repro.bench/1``.

    Set ``REPRO_BENCH_JSON=path.json`` to write the session's benchmark
    measurements in the same schema ``repro bench`` emits, one workload
    per benchmarked test.  Fields a pytest benchmark has no counterpart
    for (``legacy_ms``, ``speedup``, ``identical`` — there is no legacy
    twin being raced) are ``null``; downstream tooling that consumes
    ``repro.bench/1`` keys on the shared shape, not on those values.
    """
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None) or []
    workloads = []
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        # pytest-benchmark nests Metadata.stats.min in some versions and
        # exposes .min directly in others.
        minimum = getattr(stats, "min", None)
        if minimum is None:
            minimum = getattr(getattr(stats, "stats", None), "min", None)
        if minimum is None:
            continue
        row = {
            "size": bench.name,
            "nodes": None,
            "edges": None,
            "legacy_ms": None,
            "fast_ms": round(minimum * 1000.0, 3),
            "speedup": None,
            "identical": None,
        }
        workloads.append(
            {
                "name": bench.fullname,
                "family": "pytest-benchmark",
                "rows": [row],
                "largest": row,
            }
        )
    payload = {
        "schema": "repro.bench/1",
        "tag": "pytest",
        "mode": "pytest",
        "python": platform.python_version(),
        "repeat": None,
        "workloads": workloads,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def ladder_graphs(kind: str, sizes):
    makers = {
        "defuse": defuse_worst_case,
        "diamond": diamond_chain,
        "loops": loop_nest,
        "wide": wide_variable_program,
        "sparse": sparse_use_program,
    }
    return {n: build_cfg(makers[kind](n)) for n in sizes}
