"""Shared workload builders for the experiment benchmarks.

Graphs are built once per session and copied where a benchmark mutates
them.  Every benchmark file corresponds to one experiment id in
DESIGN.md / EXPERIMENTS.md and carries deterministic *shape assertions*
(who wins, by roughly what factor) alongside the timing measurements.

Analysis results come through :class:`repro.pipeline.AnalysisManager`
fixtures: each session graph gets one manager, so benchmarks that only
*read* an analysis (the DFG, SESE structure, dominators) share a single
computation instead of each rebuilding it, and the per-pass work/wall
numbers are available via ``manager.report()`` for shape assertions.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.pipeline import AnalysisManager
from repro.workloads.generators import inline_expansion_program, random_program
from repro.workloads.ladders import (
    defuse_worst_case,
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)


@pytest.fixture(scope="session")
def medium_random_graph():
    return build_cfg(random_program(42, size=60, num_vars=5))


@pytest.fixture(scope="session")
def large_random_graph():
    return build_cfg(random_program(7, size=200, num_vars=6))


@pytest.fixture(scope="session")
def inline_graph():
    return build_cfg(inline_expansion_program(3, calls=12, num_vars=4))


@pytest.fixture(scope="session")
def medium_random_manager(medium_random_graph):
    return AnalysisManager(medium_random_graph)


@pytest.fixture(scope="session")
def large_random_manager(large_random_graph):
    return AnalysisManager(large_random_graph)


@pytest.fixture(scope="session")
def inline_manager(inline_graph):
    return AnalysisManager(inline_graph)


def ladder_graphs(kind: str, sizes):
    makers = {
        "defuse": defuse_worst_case,
        "diamond": diamond_chain,
        "loops": loop_nest,
        "wide": wide_variable_program,
        "sparse": sparse_use_program,
    }
    return {n: build_cfg(makers[kind](n)) for n in sizes}
