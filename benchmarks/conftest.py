"""Shared workload builders for the experiment benchmarks.

Graphs are built once per session and copied where a benchmark mutates
them.  Every benchmark file corresponds to one experiment id in
DESIGN.md / EXPERIMENTS.md and carries deterministic *shape assertions*
(who wins, by roughly what factor) alongside the timing measurements.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.workloads.generators import inline_expansion_program, random_program
from repro.workloads.ladders import (
    defuse_worst_case,
    diamond_chain,
    loop_nest,
    sparse_use_program,
    wide_variable_program,
)


@pytest.fixture(scope="session")
def medium_random_graph():
    return build_cfg(random_program(42, size=60, num_vars=5))


@pytest.fixture(scope="session")
def large_random_graph():
    return build_cfg(random_program(7, size=200, num_vars=6))


@pytest.fixture(scope="session")
def inline_graph():
    return build_cfg(inline_expansion_program(3, calls=12, num_vars=4))


def ladder_graphs(kind: str, sizes):
    makers = {
        "defuse": defuse_worst_case,
        "diamond": diamond_chain,
        "loops": loop_nest,
        "wide": wide_variable_program,
        "sparse": sparse_use_program,
    }
    return {n: build_cfg(makers[kind](n)) for n in sizes}
