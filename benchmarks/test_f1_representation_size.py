"""Experiment F1 (Figure 1 / Section 2): representation sizes.

Paper claim: def-use chains are O(E^2 V) in the worst case; SSA and the
DFG are O(EV).  On the n-conditional-definitions / n-uses family,
doubling n must roughly quadruple the chain count while the SSA and DFG
sizes roughly double.  The benchmark also times the three constructions.
"""

from repro.cfg.builder import build_cfg
from repro.core.build import build_dfg
from repro.defuse.chains import build_def_use_chains
from repro.ssa.cytron import build_ssa_cytron
from repro.workloads.ladders import defuse_worst_case

SIZES = (8, 16, 32)
GRAPHS = {n: build_cfg(defuse_worst_case(n)) for n in SIZES}


def sizes_at(n):
    g = GRAPHS[n]
    return {
        "chains": build_def_use_chains(g).size(),
        "ssa": build_ssa_cytron(g).size(),
        "dfg": build_dfg(g).size(include_control=False),
    }


def test_shape_chains_quadratic_ssa_dfg_linear(benchmark):
    rows = {n: sizes_at(n) for n in SIZES}
    for a, b in zip(SIZES, SIZES[1:]):
        chain_ratio = rows[b]["chains"] / rows[a]["chains"]
        ssa_ratio = rows[b]["ssa"] / rows[a]["ssa"]
        dfg_ratio = rows[b]["dfg"] / rows[a]["dfg"]
        assert chain_ratio > 3.0, f"chains should ~quadruple: {chain_ratio}"
        assert ssa_ratio < 3.0, f"SSA should ~double: {ssa_ratio}"
        assert dfg_ratio < 3.0, f"DFG should ~double: {dfg_ratio}"
    print("\nF1 sizes (n: chains / ssa / dfg):")
    for n, row in rows.items():
        print(f"  n={n:3d}: {row['chains']:6d} / {row['ssa']:5d} / {row['dfg']:5d}")
    benchmark(sizes_at, SIZES[-1])


def test_time_build_def_use_chains(benchmark):
    benchmark(build_def_use_chains, GRAPHS[SIZES[-1]])


def test_time_build_ssa(benchmark):
    benchmark(build_ssa_cytron, GRAPHS[SIZES[-1]])


def test_time_build_dfg(benchmark):
    benchmark(build_dfg, GRAPHS[SIZES[-1]])
