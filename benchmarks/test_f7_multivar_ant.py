"""Experiment F7 (Figure 7): multivariable anticipatability.

Reproduces the figure: ANT relative to x holds on the prefix after x's
definition, ANT relative to y only after y's definition, and the
combined result is their intersection -- the suffix the paper labels
e5-e7.  Timing compares per-variable relative propagation plus
combination against the dense CFG formulation.
"""

from repro.cfg.builder import build_cfg
from repro.core.anticipate import dfg_anticipatability
from repro.dataflow.anticipatable import anticipatable_expressions
from repro.lang.parser import parse_expr, parse_program
from repro.workloads import suites

EXPR = parse_expr("x + y")
FIG7 = build_cfg(suites.figure7())


def scaled_variant(blocks: int = 10):
    parts = []
    for i in range(blocks):
        parts.append(f"x := a{i};")
        parts.append(f"w{i} := x * 2;")
        parts.append(f"y := b{i};")
        parts.append(f"z{i} := x + y;")
        parts.append(f"print z{i} + w{i};")
    return build_cfg(parse_program("\n".join(parts)))


SCALED = scaled_variant()


def test_shape_figure7_exact(benchmark):
    result = dfg_anticipatability(FIG7, EXPR)
    cfg_set = {
        eid
        for eid, s in anticipatable_expressions(FIG7).items()
        if EXPR in s
    }
    assert result.ant_edges == cfg_set
    rel_x = result.per_var["x"].ant_edges
    rel_y = result.per_var["y"].ant_edges
    # Relative-to-x covers more than the combination; relative-to-y pins
    # the suffix; the combination is their intersection.
    assert result.ant_edges == rel_x & rel_y
    assert rel_x - result.ant_edges, "x alone must reach further back"
    y_def = next(n for n in FIG7.assign_nodes() if n.target == "y")
    z_def = next(n for n in FIG7.assign_nodes() if n.target == "z")
    assert FIG7.out_edge(y_def.id).id in result.ant_edges
    assert FIG7.in_edge(z_def.id).id in result.ant_edges
    w_def = next(n for n in FIG7.assign_nodes() if n.target == "w")
    assert FIG7.in_edge(w_def.id).id not in result.ant_edges
    print(f"\nF7 combined ANT edges: {sorted(result.ant_edges)}")
    print(f"F7 relative-to-x only: {sorted(rel_x - result.ant_edges)}")
    benchmark(dfg_anticipatability, FIG7, EXPR)


def test_shape_scaled_sound(benchmark):
    result = dfg_anticipatability(SCALED, EXPR)
    cfg_set = {
        eid
        for eid, s in anticipatable_expressions(SCALED).items()
        if EXPR in s
    }
    assert result.ant_edges <= cfg_set
    benchmark(dfg_anticipatability, SCALED, EXPR)


def test_time_cfg_ant_dense(benchmark):
    benchmark(anticipatable_expressions, SCALED)
