"""Experiment C2 (Sections 1, 3, 6): the factored CDG in O(E).

Paper claim: cycle equivalence "can be used to construct a factored
control dependence graph of a program in O(E) time, a factor of N
improvement over the best existing algorithm", and it needs neither
dominators nor postdominators.

Deterministic shape: the standard construction's *output* alone (the
per-edge control-dependence sets) grows super-linearly on nested
structures, while the factored representation is one integer per edge.
Timing compares the two constructions; correctness was established by
the refinement tests (cycle equivalence never merges edges with
different dependence sets).
"""

from repro.cfg.builder import build_cfg
from repro.controldep.cdg import control_dependence_edges
from repro.controldep.factored import build_factored_cdg
from repro.lang.ast_nodes import (
    Assign,
    BinOp,
    IntLit,
    Print,
    Program,
    Repeat,
    Stmt,
    Var,
)
from repro.workloads.ladders import loop_nest


def repeat_nest(depth: int) -> Program:
    """A tower of nested repeat-until loops.  A repeat body always
    executes, so every node of the innermost body postdominates each
    enclosing loop's entry and is control dependent on *every* enclosing
    until-branch: dense CDG output is Theta(depth^2) while E is
    Theta(depth)."""

    def nest(level: int) -> list[Stmt]:
        if level == 0:
            body: list[Stmt] = [Assign("x", BinOp("+", Var("x"), IntLit(1)))]
        else:
            body = nest(level - 1)
        fuel = f"n{level}"
        body = body + [Assign(fuel, BinOp("-", Var(fuel), IntLit(1)))]
        return [
            Assign(fuel, IntLit(2)),
            Repeat(body, BinOp("<=", Var(fuel), IntLit(0))),
        ]

    return Program(nest(depth) + [Print(Var("x"))])


SIZES = (8, 16, 32)
GRAPHS = {n: build_cfg(repeat_nest(n)) for n in SIZES}
NEST = build_cfg(loop_nest(6, width=3))


def dense_output_size(graph) -> int:
    return sum(len(s) for s in control_dependence_edges(graph).values())


def test_shape_dense_output_quadratic_factored_linear(benchmark):
    rows = {}
    for n in SIZES:
        g = GRAPHS[n]
        dense = dense_output_size(g)
        factored = len(build_factored_cdg(g).edge_class)
        rows[n] = (g.num_edges, dense, factored)
    print("\nC2 (depth: E, dense CDG entries, factored entries):")
    for n, (edges, dense, factored) in rows.items():
        print(f"  d={n:3d}: E={edges:4d} dense={dense:6d} factored={factored:4d}")
    for a, b in zip(SIZES, SIZES[1:]):
        dense_ratio = rows[b][1] / rows[a][1]
        factored_ratio = rows[b][2] / rows[a][2]
        assert dense_ratio > 3.0, f"dense output should ~quadruple: {dense_ratio}"
        assert factored_ratio < 3.0, f"factored should ~double: {factored_ratio}"
    benchmark(build_factored_cdg, GRAPHS[SIZES[-1]])


def test_time_factored_cdg(benchmark):
    benchmark(build_factored_cdg, GRAPHS[SIZES[-1]])


def test_time_standard_cdg(benchmark):
    benchmark(control_dependence_edges, GRAPHS[SIZES[-1]])


def test_time_factored_on_loop_nest(benchmark):
    benchmark(build_factored_cdg, NEST)


def test_time_standard_on_loop_nest(benchmark):
    benchmark(control_dependence_edges, NEST)


def test_shape_wall_time_crossover(benchmark):
    """The factor-of-N claim in wall time: on a deep repeat-nest the
    quadratic-output standard construction loses to the O(E) factored
    one by a growing factor (about 10x at depth 128 on this machine)."""
    import time

    deep = build_cfg(repeat_nest(128))

    def timed(fn):
        start = time.perf_counter()
        fn(deep)
        return time.perf_counter() - start

    factored = min(timed(build_factored_cdg) for _ in range(3))
    standard = min(timed(control_dependence_edges) for _ in range(3))
    print(f"\nC2 wall time at depth 128: factored={factored * 1e3:.2f}ms "
          f"standard={standard * 1e3:.2f}ms")
    assert factored < standard, (factored, standard)
    benchmark(build_factored_cdg, deep)
