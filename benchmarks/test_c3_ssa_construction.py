"""Experiment C3 (Section 3.3): SSA from the DFG in O(EV).

Paper claim: "we can construct [SSA] in O(EV) time by first building the
DFG representation and then eliding switches and converting merges to
phi-functions.  Unlike the standard algorithm, our algorithm does not
require computation of the dominance relation or dominance frontiers."

Shape: the two constructions place identical phi-functions on every
workload (checked exhaustively in the unit tests; re-asserted here on
the benchmark graphs); timing compares them with and without sharing
the prebuilt DFG.
"""

from repro.cfg.builder import build_cfg
from repro.core.build import build_dfg
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.from_dfg import build_ssa_from_dfg
from repro.workloads.generators import random_program
from repro.workloads.ladders import defuse_worst_case, diamond_chain

GRAPHS = {
    "random": build_cfg(random_program(21, size=120, num_vars=5)),
    "diamonds": build_cfg(diamond_chain(60, num_vars=4)),
    "defuse": build_cfg(defuse_worst_case(20, num_vars=3)),
}
DFGS = {name: build_dfg(g) for name, g in GRAPHS.items()}


def test_shape_identical_phi_placement(benchmark):
    for name, g in GRAPHS.items():
        via_dfg = build_ssa_from_dfg(g, DFGS[name])
        cytron = build_ssa_cytron(g, pruned=True)
        assert via_dfg.phi_placement() == cytron.phi_placement(), name
        print(f"\nC3 {name}: {len(via_dfg.all_phis())} phis, "
              f"size {via_dfg.size()} (both constructions)")
    benchmark(build_ssa_from_dfg, GRAPHS["random"], DFGS["random"])


def test_time_ssa_from_dfg_sharing_dfg(benchmark):
    benchmark(build_ssa_from_dfg, GRAPHS["random"], DFGS["random"])


def test_time_ssa_from_dfg_from_scratch(benchmark):
    benchmark(build_ssa_from_dfg, GRAPHS["random"])


def test_time_ssa_cytron(benchmark):
    benchmark(build_ssa_cytron, GRAPHS["random"], True)


def test_time_ssa_cytron_minimal(benchmark):
    benchmark(build_ssa_cytron, GRAPHS["random"])
