"""Extension experiment E2: loop-carried dependence analysis.

Section 6 names "loop recognition and distance/direction information for
loop-carried dependences" as the parallelization extension of the DFG
picture.  Shape assertions: the DOALL verdicts on the canonical kernel
shapes (elementwise parallel, stencil serial, parity-independent), and
analysis cost linear in the number of accesses.
"""

from repro.cfg.builder import build_cfg
from repro.core.loopdeps import analyze_loop_dependences, parallelizable_loops
from repro.graphs.loops import natural_loops
from repro.lang.parser import parse_program


def kernel(accesses: int, stencil: bool):
    body_lines = []
    for k in range(accesses):
        if stencil:
            body_lines.append(f"a{k}[i] := a{k}[i - 1] + {k};")
        else:
            body_lines.append(f"a{k}[i] := b{k}[i] + {k};")
    source = (
        "i := 1;\nwhile (i < n) {\n"
        + "\n".join(body_lines)
        + "\ni := i + 1;\n}\nprint a0[2];"
    )
    return build_cfg(parse_program(source))


PARALLEL = kernel(6, stencil=False)
SERIAL = kernel(6, stencil=True)
SIZES = (4, 8, 16)
SWEEP = {m: kernel(m, stencil=True) for m in SIZES}


def analyze(graph):
    loops = natural_loops(graph)
    (header, body), = loops.items()
    return analyze_loop_dependences(graph, header, body)


def test_shape_verdicts(benchmark):
    assert all(parallelizable_loops(PARALLEL).values())
    assert not all(parallelizable_loops(SERIAL).values())
    serial_deps = analyze(SERIAL)
    carried = [d for d in serial_deps if d.distance == 1]
    print(f"\nE2 stencil kernel: {len(carried)} carried flow deps "
          f"(one per array), DOALL=False")
    assert len(carried) == 6
    benchmark(analyze, SERIAL)


def test_shape_cost_linear_in_accesses(benchmark):
    counts = {}
    for m in SIZES:
        counts[m] = len(analyze(SWEEP[m]))
    print("\nE2 dependences found per kernel size:")
    for m in SIZES:
        print(f"  accesses={2 * m:3d} deps={counts[m]:3d}")
    for a, b in zip(SIZES, SIZES[1:]):
        assert counts[b] / counts[a] < 3.0  # per-array, linear
    benchmark(analyze, SWEEP[SIZES[-1]])


def test_time_doall_check(benchmark):
    benchmark(parallelizable_loops, PARALLEL)
