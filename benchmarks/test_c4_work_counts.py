"""Experiment C4 (Section 4/6): work proportional to relevant dependences.

Paper claim: the DFG "avoids propagating information through
single-entry single-exit regions in which there are no assignments to
the relevant variable" and performs "work proportional to the number of
variable references at each assignment statement".

On the sparse-use family (R disjoint regions, each with its own little
variable neighbourhood) the vector algorithm pays for all R*k variables
at every node -- work grows ~quadratically in R -- while DFG work grows
~linearly, because no dependence crosses between regions.
"""

from repro.cfg.builder import build_cfg
from repro.core.constprop import dfg_constant_propagation
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.util.counters import WorkCounter
from repro.workloads.ladders import sparse_use_program

R_SIZES = (8, 16, 32)
GRAPHS = {n: build_cfg(sparse_use_program(n)) for n in R_SIZES}


def work_pair(n):
    cfg_counter, dfg_counter = WorkCounter(), WorkCounter()
    cfg_constant_propagation(GRAPHS[n], cfg_counter)
    dfg_constant_propagation(GRAPHS[n], counter=dfg_counter)
    return cfg_counter["vector_entries"], dfg_counter.total()


def test_shape_sparse_work(benchmark):
    rows = {n: work_pair(n) for n in R_SIZES}
    print("\nC4 work (regions: CFG / DFG):")
    for n in R_SIZES:
        print(f"  R={n:3d}: {rows[n][0]:8d} / {rows[n][1]:6d}")
    for a, b in zip(R_SIZES, R_SIZES[1:]):
        cfg_ratio = rows[b][0] / rows[a][0]
        dfg_ratio = rows[b][1] / rows[a][1]
        assert cfg_ratio > 3.0, f"dense work should ~quadruple: {cfg_ratio}"
        assert dfg_ratio < 3.0, f"sparse work should ~double: {dfg_ratio}"
    benchmark(work_pair, R_SIZES[-1])


def test_time_cfg_on_sparse(benchmark):
    benchmark(cfg_constant_propagation, GRAPHS[R_SIZES[-1]])


def test_time_dfg_on_sparse(benchmark):
    benchmark(dfg_constant_propagation, GRAPHS[R_SIZES[-1]])
