"""Ablation A1: region bypassing on/off (Section 3.3).

The design choice DESIGN.md calls out: bypassing is an optimization of
the representation, not a correctness requirement.  Measured: identical
analysis results (asserted), smaller graphs and less propagation work
with bypassing on, on workloads where variables cross regions that do
not touch them.
"""

from repro.cfg.builder import build_cfg
from repro.core.build import build_dfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR
from repro.lang.parser import parse_program
from repro.util.counters import WorkCounter


def crossing_workload(diamonds: int = 20, crossers: int = 5):
    lines = [f"x{k} := {k};" for k in range(crossers)]
    for i in range(diamonds):
        lines.append(
            f"if (c{i} > 0) {{ y := y + 1; }} else {{ y := y - 1; }}"
        )
    lines.extend(f"print x{k};" for k in range(crossers))
    lines.append("print y;")
    return build_cfg(parse_program("\n".join(lines)))


GRAPH = crossing_workload()
FAST = build_dfg(GRAPH)
BASE = build_dfg(GRAPH, bypass=False)


def analysis_work(dfg) -> int:
    counter = WorkCounter()
    dfg_constant_propagation(GRAPH, dfg, counter)
    return counter.total()


def test_shape_same_answers_less_work(benchmark):
    fast_result = dfg_constant_propagation(GRAPH, FAST)
    base_result = dfg_constant_propagation(GRAPH, BASE)
    for key, value in fast_result.use_values.items():
        if key[1] != CTRL_VAR:
            assert base_result.use_values[key] == value
    fast_size, base_size = FAST.size(), BASE.size()
    fast_work, base_work = analysis_work(FAST), analysis_work(BASE)
    print(f"\nA1 dependence edges: bypassed={fast_size} base={base_size}")
    print(f"A1 constprop work:   bypassed={fast_work} base={base_work}")
    assert fast_size < base_size
    assert fast_work < base_work
    benchmark(analysis_work, FAST)


def test_time_constprop_bypassed(benchmark):
    benchmark(dfg_constant_propagation, GRAPH, FAST)


def test_time_constprop_base_level(benchmark):
    benchmark(dfg_constant_propagation, GRAPH, BASE)


def test_time_build_bypassed(benchmark):
    benchmark(build_dfg, GRAPH)


def test_time_build_base_level(benchmark):
    benchmark(build_dfg, GRAPH, None, None, True, None, False)
