"""Experiment F2 (Figure 2 / Section 3.2): DFG construction cost.

Paper claim: the DFG is built in O(EV) time.  Work counters (source
resolutions are the unit of construction work) must grow linearly along
a diamond chain (E grows, V fixed) and linearly in V on the
wide-variable family (V grows, statements per variable fixed).
"""

from repro.cfg.builder import build_cfg
from repro.controldep.sese import ProgramStructure
from repro.core.build import build_dfg
from repro.util.counters import WorkCounter
from repro.workloads.ladders import diamond_chain, wide_variable_program

E_SIZES = (20, 40, 80)
V_SIZES = (16, 32, 64)
E_GRAPHS = {n: build_cfg(diamond_chain(n, num_vars=3)) for n in E_SIZES}
V_GRAPHS = {n: build_cfg(wide_variable_program(n)) for n in V_SIZES}


def construction_work(graph) -> int:
    counter = WorkCounter()
    build_dfg(graph, counter=counter)
    return counter["source_resolutions"]


def test_shape_work_linear_in_E(benchmark):
    work = {n: construction_work(E_GRAPHS[n]) for n in E_SIZES}
    print("\nF2 construction work vs E:")
    for n in E_SIZES:
        print(f"  diamonds={n:3d}  E={E_GRAPHS[n].num_edges:4d}  "
              f"work={work[n]:6d}")
    for a, b in zip(E_SIZES, E_SIZES[1:]):
        ratio = work[b] / work[a]
        assert ratio < 3.0, f"work should ~double when E doubles: {ratio}"
    benchmark(construction_work, E_GRAPHS[E_SIZES[-1]])


def test_shape_work_bounded_by_EV(benchmark):
    """On the wide family both E and V grow with n (live ranges span the
    block), so the paper's bound is O(E*V); the work per E*V unit must
    stay flat across a 4x sweep."""
    rows = {}
    for n in V_SIZES:
        g = V_GRAPHS[n]
        work = construction_work(g)
        ev = g.num_edges * len(g.variables())
        rows[n] = (work, ev, work / ev)
    print("\nF2 construction work vs E*V:")
    for n, (work, ev, density) in rows.items():
        print(f"  vars={n:3d}  work={work:6d}  E*V={ev:6d}  "
              f"work/(E*V)={density:.3f}")
    densities = [d for _, _, d in rows.values()]
    assert max(densities) < 2.5 * min(densities), densities
    assert max(densities) < 4.0, "work must stay within a small constant of E*V"
    benchmark(construction_work, V_GRAPHS[V_SIZES[-1]])


def test_time_full_construction(benchmark, large_random_graph):
    benchmark(build_dfg, large_random_graph)


def test_time_structure_only(benchmark, large_random_graph):
    """The SESE/cycle-equivalence prerequisite, timed separately."""
    benchmark(ProgramStructure, large_random_graph)


def test_time_warm_manager_query(benchmark, large_random_manager):
    """A warm pipeline-manager query must be dictionary-lookup cheap:
    no construction work at all compared to the cold build above."""
    manager = large_random_manager
    manager.get("dfg")  # ensure warm
    counter = manager.metrics.counter
    before = counter.snapshot()
    benchmark(manager.get, "dfg")
    assert counter.diff(before) == {}, "warm queries must do zero work"
