"""Experiment F3 (Figure 3): all-paths vs possible-paths constants.

Paper claim: def-use-chain propagation finds only all-paths constants
(Figure 3(a)); the CFG and DFG algorithms additionally find
possible-paths constants (Figure 3(b)), which are "common in code
generated from inline expansion of procedures or macros".

Shape assertions: on the inline-expansion family the DFG/CFG/SCCP trio
find strictly more constants at live uses than the chain algorithm and
exactly agree among themselves; on Figure 3(a) all four agree.
"""

from repro.cfg.builder import build_cfg
from repro.core.constprop import dfg_constant_propagation
from repro.core.dfg import CTRL_VAR
from repro.defuse.constprop import defuse_constant_propagation
from repro.opt.cfg_constprop import cfg_constant_propagation
from repro.ssa.cytron import build_ssa_cytron
from repro.ssa.sccp import sparse_conditional_constant_propagation
from repro.workloads import suites
from repro.workloads.generators import inline_expansion_program

INLINE = build_cfg(inline_expansion_program(5, calls=10, num_vars=4))
FIG3A = build_cfg(suites.figure3a())
FIG3B = build_cfg(suites.figure3b())


def counts(graph):
    dfg_result = dfg_constant_propagation(graph)
    live = set(graph.nodes) - dfg_result.dead_nodes
    chain = {
        k: v
        for k, v in defuse_constant_propagation(graph).constant_uses().items()
        if k[0] in live
    }
    cfg = {
        k: v
        for k, v in cfg_constant_propagation(graph).constant_uses().items()
        if k[0] in live and k[1] != CTRL_VAR
    }
    dfg = dfg_result.constant_uses()
    return chain, cfg, dfg


def test_shape_possible_paths_gap(benchmark):
    chain, cfg, dfg = counts(INLINE)
    print(f"\nF3 constants at live uses: chains={len(chain)} "
          f"cfg={len(cfg)} dfg={len(dfg)}")
    assert dfg == cfg
    assert set(chain) <= set(dfg)
    assert len(dfg) > len(chain), "possible-paths constants must appear"
    # Figure 3(a): all-paths constants -- everyone finds y = 3.
    for result in counts(FIG3A):
        y_use = [v for (n, var), v in result.items() if var == "x"]
        assert 3 in y_use
    # Figure 3(b): only the dead-region-aware algorithms find x = 1.
    chain_b, cfg_b, dfg_b = counts(FIG3B)
    assert any(v == 1 for (_, var), v in dfg_b.items() if var == "x")
    assert not any(var == "x" for (_, var) in chain_b)
    benchmark(counts, INLINE)


def test_time_defuse_constprop(benchmark):
    benchmark(defuse_constant_propagation, INLINE)


def test_time_cfg_constprop(benchmark):
    benchmark(cfg_constant_propagation, INLINE)


def test_time_dfg_constprop(benchmark):
    benchmark(dfg_constant_propagation, INLINE)


def test_time_sccp(benchmark):
    ssa = build_ssa_cytron(INLINE)
    benchmark(sparse_conditional_constant_propagation, ssa)
